#include "core/engine.h"

#include <algorithm>
#include <cassert>

#include "ground/grounder.h"
#include "serve/session.h"
#include "solver/solver.h"
#include "util/strings.h"
#include "wfs/wfs.h"

namespace gsls {

const char* GoalStatusName(GoalStatus s) {
  switch (s) {
    case GoalStatus::kSuccessful: return "successful";
    case GoalStatus::kFailed: return "failed";
    case GoalStatus::kFloundered: return "floundered";
    case GoalStatus::kIndeterminate: return "indeterminate";
    case GoalStatus::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

/// Goals are literal sets (queries are sets, Def. 1.3): drop duplicates,
/// preserving first-occurrence order so selection rules see a stable order.
Goal NormalizeGoal(const Goal& goal) {
  Goal out;
  out.reserve(goal.size());
  for (const Literal& l : goal) {
    if (std::find(out.begin(), out.end(), l) == out.end()) out.push_back(l);
  }
  return out;
}

uint64_t MixKey(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xc4ceb9fe1a85ec53ULL;
  return h ^ (h >> 29);
}

}  // namespace

GlobalSlsEngine::GlobalSlsEngine(const Program& program, EngineOptions opts)
    : program_(program), store_(program.store()), opts_(opts) {}

GlobalSlsEngine::~GlobalSlsEngine() = default;

IncrementalSolver* GlobalSlsEngine::OracleSolver() const {
  return oracle_session_ != nullptr ? &oracle_session_->solver() : nullptr;
}

const IncrementalSolver* GlobalSlsEngine::oracle_solver() const {
  return OracleSolver();
}

void GlobalSlsEngine::SetDeadlineNs(uint64_t deadline_ns) {
  opts_.solver.deadline_ns = deadline_ns;
  if (oracle_session_ != nullptr) {
    oracle_session_->SetDeadlineNs(deadline_ns);
  }
}

void GlobalSlsEngine::SetStepBudget(uint64_t step_budget) {
  opts_.solver.step_budget = step_budget;
  if (oracle_session_ != nullptr) {
    oracle_session_->SetStepBudget(step_budget);
  }
}

void GlobalSlsEngine::DumpTelemetry(std::ostream& os) const {
  if (oracle_session_ == nullptr) {
    os << "no bottom-up oracle built\n";
    return;
  }
  oracle_session_->solver().DumpTelemetry(os);
}

bool GlobalSlsEngine::OracleApplies() {
  // The bottom-up model matches the search statuses only under the
  // preferential rule (Thm. 4.7); the counterexample computation rules of
  // Examples 3.2/3.3 must keep exhibiting their incompleteness.
  if (!opts_.bottom_up_oracle || !opts_.memo_simplification) return false;
  if (opts_.selection != SelectionMode::kPositivistic ||
      !opts_.negatively_parallel) {
    return false;
  }
  // Exactness needs the depth-1 relevant grounding to be the whole
  // relevant instantiation: function-free programs only (arguments are
  // constants or variables, i.e. atom depth <= 2). The scan's verdict
  // only moves when the clause base does, so it is cached by clause
  // count — a rule-delta stream must not pay O(program) per delta here.
  if (applies_checked_count_ == program_.clauses().size()) {
    return applies_cache_;
  }
  applies_checked_count_ = program_.clauses().size();
  applies_cache_ = true;
  for (const Clause& c : program_.clauses()) {
    if (c.head->depth() > 2) applies_cache_ = false;
    for (const Literal& l : c.body) {
      if (l.atom->depth() > 2) applies_cache_ = false;
    }
  }
  return applies_cache_;
}

bool GlobalSlsEngine::ApplyOracleRuleDelta(bool is_assert, const Clause& rule,
                                           RuleId* id_out) {
  if (is_assert) {
    bool changed = false;
    Result<RuleId> id = oracle_session_->Assert(rule, &changed);
    if (id.ok() && id_out != nullptr) *id_out = id.value();
    return changed;
  }
  // Content-addressed retraction (delegated): unknown atoms mean the rule
  // cannot be registered, hence there is nothing to retract.
  return oracle_session_->Retract(rule);
}

void GlobalSlsEngine::LogOracleRuleDelta(bool is_assert, const Clause& rule) {
  std::vector<const Term*> pos;
  std::vector<const Term*> neg;
  for (const Literal& l : rule.body) {
    (l.positive ? pos : neg).push_back(l.atom);
  }
  std::sort(pos.begin(), pos.end());
  std::sort(neg.begin(), neg.end());
  std::vector<const Term*> key;
  key.reserve(pos.size() + neg.size() + 2);
  key.push_back(rule.head);
  key.insert(key.end(), pos.begin(), pos.end());
  key.push_back(nullptr);
  key.insert(key.end(), neg.begin(), neg.end());
  auto [it, inserted] =
      oracle_rule_index_.emplace(key, oracle_rule_log_.size());
  if (inserted) {
    oracle_rule_log_.push_back(OracleDelta{is_assert, rule, std::move(key)});
  } else {
    oracle_rule_log_[it->second] = OracleDelta{is_assert, rule,
                                               std::move(key)};
  }
}

void GlobalSlsEngine::EnsureOracleBuilt() {
  if (!OracleApplies()) {
    // The clause base may have grown out of the oracle's domain (e.g. a
    // function-symbol clause arrived): a previously built oracle is now
    // stale and must never seed another memo. Queries fall back to plain
    // search; the rule log is kept in case applicability returns.
    oracle_session_.reset();
    return;
  }
  // A program that gained clauses since the oracle was built (AddClause,
  // then ClearMemo) invalidates the ground model wholesale: rebuild, then
  // replay the logged rule deltas so they survive the rebuild.
  if (oracle_session_ != nullptr &&
      oracle_clause_count_ != program_.clauses().size()) {
    oracle_session_.reset();
  }
  if (oracle_session_ != nullptr) return;
  GroundingOptions gopts;
  Result<GroundProgram> ground = GroundRelevant(program_, gopts);
  if (!ground.ok()) return;  // over budget: fall back to plain search
  // Levels ride the same SCC schedule as the model (solver/stages.h):
  // per-component reconstruction, parallel-safe, maintained across any
  // future deltas — the V_P stage iteration is a test oracle only.
  SolverOptions sopts = opts_.solver;
  sopts.compute_levels = opts_.compute_levels;
  // Attach a token before the first pass so `Cancel()` always has a
  // channel the solver polls (the caller's token when supplied).
  if (sopts.cancel == nullptr) sopts.cancel = &cancel_token_;
  auto solver = std::make_unique<IncrementalSolver>(
      std::move(ground.value()), sopts);
  // The oracle is a direct-mode (synchronous, zero extra threads) Session:
  // rule deltas and point queries go through the same unified facade the
  // public engines expose.
  SessionOptions sess_opts;
  sess_opts.compute_levels = opts_.compute_levels;
  oracle_session_ = std::make_unique<Session>(
      Session::Adopt(std::move(solver), std::move(sess_opts)));
  oracle_clause_count_ = program_.clauses().size();
  for (const OracleDelta& d : oracle_rule_log_) {
    ApplyOracleRuleDelta(d.is_assert, d.rule);
  }
}

void GlobalSlsEngine::MaybeSeedOracle() {
  if (oracle_attempted_) return;
  oracle_attempted_ = true;
  EnsureOracleBuilt();
  IncrementalSolver* oracle = OracleSolver();
  if (oracle == nullptr) return;
  // The incremental instance persists across queries and `ClearMemo`:
  // `Model()` returns the cached solve when the program is unchanged, so
  // reseeding is one O(atoms) memo fill, not a re-ground and re-solve.
  const GroundProgram& gp = oracle->program();
  const WfsModel& wfs = oracle->Model();
  if (wfs.outcome != SolveOutcome::kCompleted) {
    // The seed pass was cancelled or hit its deadline: the model is the
    // anytime partial state, not Thm. 4.7's — seeding from it would
    // memoize wrong determinations. Leave the memo empty (plain search is
    // sound without it) and let a later query retry the seed, resuming
    // exactly the solver's remaining work.
    oracle_attempted_ = false;
    return;
  }
  const bool levels = wfs.has_levels;
  for (AtomId a = 0; a < gp.atom_count(); ++a) {
    MemoEntry& entry = memo_[gp.AtomTerm(a)];
    entry.done = true;
    SubgoalOutcome& out = entry.outcome;
    switch (wfs.model.Value(a)) {
      case TruthValue::kTrue:
        out.status = GoalStatus::kSuccessful;
        if (levels) {
          out.level = Ordinal::Finite(wfs.true_stage[a]);
          out.level_exact = true;
        }
        break;
      case TruthValue::kFalse:
        out.status = GoalStatus::kFailed;
        if (levels) {
          out.level = Ordinal::Finite(wfs.false_stage[a]);
          out.level_exact = true;
        }
        break;
      case TruthValue::kUndefined:
        out.status = GoalStatus::kIndeterminate;
        break;
    }
  }
}

Result<RuleId> GlobalSlsEngine::AssertRule(const Clause& rule) {
  if (!rule.ground()) {
    return Status::InvalidArgument("AssertRule requires a ground clause: " +
                                   rule.ToString(store_));
  }
  EnsureOracleBuilt();  // no memo fill — the next query seeds it once
  if (oracle_session_ == nullptr) {
    return Status::FailedPrecondition(
        "bottom-up oracle unavailable for this engine (disabled, "
        "non-preferential options, non-function-free program, or "
        "grounding over budget)");
  }
  RuleId id = 0;
  bool changed = ApplyOracleRuleDelta(/*is_assert=*/true, rule, &id);
  // No-op asserts (identical rule already enabled) need no log entry:
  // either the rule is in the base grounding, or an earlier assert of the
  // same content is already logged.
  if (changed) {
    LogOracleRuleDelta(true, rule);
    ClearMemo();  // next query reseeds from the repaired model
  }
  return id;
}

bool GlobalSlsEngine::RetractRule(const Clause& rule) {
  if (!rule.ground()) return false;
  EnsureOracleBuilt();
  if (oracle_session_ == nullptr) return false;
  if (!ApplyOracleRuleDelta(/*is_assert=*/false, rule)) return false;
  LogOracleRuleDelta(false, rule);
  ClearMemo();
  return true;
}

size_t GlobalSlsEngine::SelectLiteral(const Goal& goal) const {
  if (goal.empty()) return SIZE_MAX;
  switch (opts_.selection) {
    case SelectionMode::kPositivistic:
      for (size_t i = 0; i < goal.size(); ++i) {
        if (goal[i].positive) return i;
      }
      return SIZE_MAX;
    case SelectionMode::kNegativesFirst:
      for (size_t i = 0; i < goal.size(); ++i) {
        if (!goal[i].positive) return i;
      }
      return 0;
    case SelectionMode::kLeftmost:
      return 0;
  }
  return SIZE_MAX;
}

uint64_t GlobalSlsEngine::GroundGoalKey(const Goal& goal) {
  std::vector<uint64_t> keys;
  keys.reserve(goal.size());
  for (const Literal& l : goal) {
    if (!l.atom->ground()) return 0;
    keys.push_back(l.atom->hash() * 2 + (l.positive ? 1 : 0));
  }
  std::sort(keys.begin(), keys.end());
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (uint64_t k : keys) h = MixKey(h, k);
  return h == 0 ? 1 : h;
}

GlobalSlsEngine::SubgoalOutcome GlobalSlsEngine::EvalGroundSubgoal(
    const Term* q, size_t neg_depth, Taint* taint) {
  auto it = memo_.find(q);
  if (it != memo_.end()) {
    if (it->second.done) return it->second.outcome;
    if (it->second.in_progress) {
      // Negative loop: the evaluation of q recursively requires q through
      // negation. Provisionally treat the subgoal as indeterminate; the
      // result is tainted and will not be cached unless the loop is on q
      // itself (see below).
      taint->insert(q);
      SubgoalOutcome out;
      out.status = GoalStatus::kIndeterminate;
      out.level_exact = false;
      return out;
    }
  }
  if (neg_depth > opts_.max_negation_depth) {
    SubgoalOutcome out;
    out.status = GoalStatus::kUnknown;
    return out;
  }
  memo_[q].in_progress = true;

  Taint local;
  TreeOutcome tree;
  std::vector<uint64_t> path;
  Goal root{Literal::Pos(q)};
  Expand(root, Substitution(), /*depth=*/0, neg_depth, &path, root,
         /*collect_answers=*/false, Ordinal(), /*carry_exact=*/true, &local,
         &tree);
  SubgoalOutcome out = Aggregate(tree);

  // Re-lookup: recursion may have rehashed the memo table.
  MemoEntry& entry = memo_[q];
  entry.in_progress = false;
  local.erase(q);
  // Caching policy. Successful/failed conclusions never rest on the
  // provisional "indeterminate" answer handed to negative loops (such an
  // answer can only block a leaf from succeeding or a negation node from
  // failing, never enable either), so they are always safe to cache.
  // Indeterminate conclusions are cached only when the only loop involved
  // was through q itself; unknown conclusions are budget-dependent and are
  // never cached.
  bool cacheable = false;
  if (out.status == GoalStatus::kSuccessful ||
      out.status == GoalStatus::kFailed) {
    cacheable = true;
  } else if (out.status == GoalStatus::kFloundered ||
             out.status == GoalStatus::kIndeterminate) {
    cacheable = local.empty();
  }
  if (cacheable) {
    entry.done = true;
    entry.outcome = out;
  } else {
    memo_.erase(q);
  }
  for (const Term* t : local) taint->insert(t);
  return out;
}

void GlobalSlsEngine::HandleActiveLeaf(const Goal& leaf,
                                       const Substitution& theta,
                                       size_t neg_depth, const Goal& root_goal,
                                       bool collect_answers,
                                       const Ordinal& carry_lub,
                                       bool carry_exact, Taint* taint,
                                       TreeOutcome* out) {
  bool any_success_child = false;
  Ordinal min_success_child;
  bool min_success_exact = true;
  bool have_min_success = false;
  bool child_unknown = false;
  bool child_floundered = false;
  bool child_indeterminate = false;
  bool any_nonground = false;
  Ordinal lub_fail;
  bool fail_exact = true;

  auto absorb = [&](const SubgoalOutcome& so) {
    if (so.floundered_somewhere) out->any_floundered = true;
    switch (so.status) {
      case GoalStatus::kSuccessful:
        if (!have_min_success || so.level < min_success_child) {
          min_success_child = so.level;
          min_success_exact = so.level_exact;
        }
        have_min_success = true;
        any_success_child = true;
        break;
      case GoalStatus::kFailed:
        lub_fail = Ordinal::Lub(lub_fail, so.level);
        fail_exact = fail_exact && so.level_exact;
        break;
      case GoalStatus::kFloundered:
        child_floundered = true;
        break;
      case GoalStatus::kIndeterminate:
        child_indeterminate = true;
        break;
      case GoalStatus::kUnknown:
        child_unknown = true;
        break;
    }
  };

  if (opts_.negatively_parallel) {
    // Preferential rule: all ground negative literals of the leaf are
    // expanded together (their statuses combine symmetrically, so simple
    // iteration implements the paper's parallelism).
    for (const Literal& l : leaf) {
      assert(!l.positive);
      if (!l.atom->ground()) {
        any_nonground = true;  // nonground node child: floundered
        continue;
      }
      ++negation_nodes_;
      absorb(EvalGroundSubgoal(l.atom, neg_depth + 1, taint));
    }
  } else {
    // Sequential counterexample mode (Example 3.3): literals are expanded
    // left to right; the first undetermined one wedges the whole leaf even
    // if a later literal would decide it.
    for (const Literal& l : leaf) {
      assert(!l.positive);
      if (!l.atom->ground()) {
        any_nonground = true;
        break;
      }
      ++negation_nodes_;
      SubgoalOutcome so = EvalGroundSubgoal(l.atom, neg_depth + 1, taint);
      absorb(so);
      if (so.status != GoalStatus::kFailed) break;
    }
  }

  // Negation-node status calculus (Def. 3.3 rule 2).
  if (any_success_child) {
    // J is failed; its level is the minimum level of its successful
    // children. The enclosing tree node's failure level takes the lub.
    out->fail_lub = Ordinal::Lub(out->fail_lub, min_success_child);
    if (!min_success_exact || child_unknown) out->level_exact = false;
    return;
  }
  if (child_unknown) {
    out->any_unknown = true;
    out->level_exact = false;
    return;
  }
  if (any_nonground || child_floundered) {
    out->any_floundered = true;
    return;
  }
  if (child_indeterminate) {
    out->any_indeterminate = true;
    out->level_exact = false;
    return;
  }
  // All children failed (or none): J is successful at the lub of its
  // children's levels; the tree node succeeds via this leaf at lub + 1.
  // Deleted (memo-simplified) positive literals contribute their own
  // negation-node levels through the carry.
  out->any_success = true;
  fail_exact = fail_exact && carry_exact;
  Ordinal leaf_level = Ordinal::Lub(lub_fail, carry_lub) + Ordinal::Finite(1);
  if (!out->has_min_success || leaf_level < out->min_success) {
    out->min_success = leaf_level;
    out->has_min_success = true;
  }
  if (!fail_exact) out->level_exact = false;
  if (collect_answers && out->answers.size() < opts_.max_answers) {
    Answer ans;
    // Restrict the composed mgu to the variables of the original goal
    // (Def. 3.4's computed answer substitution, projected for readability).
    std::vector<VarId> root_vars;
    for (const Literal& l : root_goal) CollectVars(l.atom, &root_vars);
    for (VarId v : root_vars) {
      const Term* image = theta.Apply(store_, store_.Var(v));
      if (!(image->IsVar() && image->var() == v)) ans.theta.Bind(v, image);
    }
    ans.level = leaf_level;
    ans.level_exact = fail_exact;
    out->answers.push_back(std::move(ans));
  }
}

void GlobalSlsEngine::Expand(const Goal& goal_in, const Substitution& theta,
                             size_t depth, size_t neg_depth,
                             std::vector<uint64_t>* path_keys,
                             const Goal& root_goal, bool collect_answers,
                             const Ordinal& carry_lub, bool carry_exact,
                             Taint* taint, TreeOutcome* out) {
  if (work_ >= opts_.max_work) {
    work_exhausted_ = true;
    out->any_unknown = true;
    out->level_exact = false;
    return;
  }
  if (depth > opts_.max_slp_depth) {
    out->any_unknown = true;
    out->level_exact = false;
    return;
  }

  // Memo simplification (Sec. 7 memoing device): a ground positive literal
  // with a finished memo entry is resolved against the table instead of
  // being re-derived. Status-preserving by Lemma 4.1 + Thm. 4.7: deleting
  // a successful literal keeps exactly the leaves that matter, and a failed
  // literal fails every leaf below this goal.
  Goal goal = goal_in;
  Ordinal carry = carry_lub;
  bool carry_ok = carry_exact;
  if (opts_.memo_simplification) {
    Goal kept;
    kept.reserve(goal.size());
    bool changed = false;
    for (const Literal& l : goal) {
      if (l.positive && l.atom->ground()) {
        auto it = memo_.find(l.atom);
        if (it != memo_.end() && it->second.done) {
          const SubgoalOutcome& so = it->second.outcome;
          if (so.status == GoalStatus::kFailed) {
            // Every active leaf below this goal contains a witness from the
            // failed literal's derivation: the branch only produces failed
            // leaves. For single-literal goals the failure level transfers
            // exactly.
            if (goal.size() == 1) {
              out->fail_lub = Ordinal::Lub(
                  out->fail_lub,
                  so.level.IsSuccessor() ? so.level.Predecessor() : so.level);
              if (!so.level_exact) out->level_exact = false;
            } else {
              out->level_exact = false;
            }
            return;
          }
          if (so.status == GoalStatus::kSuccessful) {
            carry = Ordinal::Lub(
                carry,
                so.level.IsSuccessor() ? so.level.Predecessor() : so.level);
            carry_ok = carry_ok && so.level_exact;
            if (so.floundered_somewhere) out->any_floundered = true;
            // A fact-level success (level 1) has an empty negation node:
            // deleting it cannot hide successful complements from any
            // leaf. Deeper successes can, so failure levels computed in
            // this tree become approximate.
            if (!(so.level == Ordinal::Finite(1) && so.level_exact)) {
              out->fail_level_approximate = true;
            }
            changed = true;
            continue;
          }
        }
      }
      kept.push_back(l);
    }
    if (changed) goal = std::move(kept);
  }

  size_t sel = SelectLiteral(goal);
  if (sel == SIZE_MAX) {
    ++work_;
    HandleActiveLeaf(goal, theta, neg_depth, root_goal, collect_answers,
                     carry, carry_ok, taint, out);
    return;
  }
  const Literal selected = goal[sel];

  if (!selected.positive) {
    // Non-positivistic computation rule: the selected literal is negative
    // and is resolved inline, sequentially (this is exactly what loses
    // completeness in Example 3.2).
    if (!selected.atom->ground()) {
      out->any_floundered = true;  // unsafe selection: flounders
      out->level_exact = false;
      return;
    }
    ++work_;
    ++negation_nodes_;
    SubgoalOutcome so = EvalGroundSubgoal(selected.atom, neg_depth + 1, taint);
    out->level_exact = false;  // levels are only tracked faithfully for
                               // the positivistic rule
    switch (so.status) {
      case GoalStatus::kSuccessful:
        return;  // complement succeeded: this branch dies
      case GoalStatus::kFailed: {
        Goal rest;
        rest.reserve(goal.size() - 1);
        for (size_t i = 0; i < goal.size(); ++i) {
          if (i != sel) rest.push_back(goal[i]);
        }
        Expand(rest, theta, depth + 1, neg_depth, path_keys, root_goal,
               collect_answers, carry, carry_ok, taint, out);
        return;
      }
      case GoalStatus::kFloundered:
        out->any_floundered = true;
        return;
      case GoalStatus::kIndeterminate:
        out->any_indeterminate = true;
        return;
      case GoalStatus::kUnknown:
        out->any_unknown = true;
        return;
    }
    return;
  }

  // Positive selection: resolve against every program clause whose head
  // unifies (Def. 3.2).
  ++work_;
  uint64_t key = 0;
  if (opts_.prune_repeated_goals) {
    key = GroundGoalKey(goal);
    if (key != 0) {
      if (std::find(path_keys->begin(), path_keys->end(), key) !=
          path_keys->end()) {
        // The same ground goal repeats along this branch, so the branch is
        // infinite; infinite branches are failed (Sec. 7 item 1) and
        // contribute no active leaves.
        return;
      }
      path_keys->push_back(key);
    }
  }

  const std::vector<size_t>& clause_ids =
      program_.ClausesFor(selected.atom->functor());
  for (size_t ci : clause_ids) {
    if (out->answers.size() >= opts_.max_answers) {
      out->any_unknown = true;
      out->level_exact = false;
      break;
    }
    Clause variant = RenameApart(store_, program_.clauses()[ci]);
    Substitution mgu;
    if (!Unify(selected.atom, variant.head, &mgu)) continue;
    Goal child;
    child.reserve(goal.size() - 1 + variant.body.size());
    for (size_t i = 0; i < sel; ++i) {
      child.push_back(Literal{mgu.Apply(store_, goal[i].atom),
                              goal[i].positive});
    }
    for (const Literal& b : variant.body) {
      child.push_back(Literal{mgu.Apply(store_, b.atom), b.positive});
    }
    for (size_t i = sel + 1; i < goal.size(); ++i) {
      child.push_back(Literal{mgu.Apply(store_, goal[i].atom),
                              goal[i].positive});
    }
    Expand(NormalizeGoal(child), theta.ComposeWith(store_, mgu), depth + 1,
           neg_depth, path_keys, root_goal, collect_answers, carry, carry_ok,
           taint, out);
  }
  if (key != 0) path_keys->pop_back();
}

GlobalSlsEngine::SubgoalOutcome GlobalSlsEngine::Aggregate(
    const TreeOutcome& t) {
  SubgoalOutcome out;
  out.floundered_somewhere = t.any_floundered;
  if (t.any_success) {
    out.status = GoalStatus::kSuccessful;
    out.level = t.min_success;
    out.level_exact = t.level_exact;
    return out;
  }
  if (t.any_unknown) {
    out.status = GoalStatus::kUnknown;
    return out;
  }
  if (t.any_floundered) {
    out.status = GoalStatus::kFloundered;
    return out;
  }
  if (t.any_indeterminate) {
    out.status = GoalStatus::kIndeterminate;
    return out;
  }
  out.status = GoalStatus::kFailed;
  out.level = t.fail_lub + Ordinal::Finite(1);
  out.level_exact = t.level_exact && !t.fail_level_approximate;
  return out;
}

QueryResult GlobalSlsEngine::Solve(const Goal& goal) {
  MaybeSeedOracle();
  size_t work_before = work_;
  size_t neg_before = negation_nodes_;
  Taint taint;
  TreeOutcome tree;
  std::vector<uint64_t> path;
  Goal root = NormalizeGoal(goal);
  Expand(root, Substitution(), 0, 0, &path, root, /*collect_answers=*/true,
         Ordinal(), /*carry_exact=*/true, &taint, &tree);
  SubgoalOutcome so = Aggregate(tree);

  QueryResult result;
  result.status = so.status;
  result.level = so.level;
  result.level_exact = so.level_exact && opts_.compute_levels;
  result.floundered_somewhere = so.floundered_somewhere;
  result.answers = std::move(tree.answers);
  // Deduplicate answers by their effect on the goal. Several successful
  // leaves can carry the same substitution; the root's level with respect
  // to that answer is one more than the *minimum* child level (Def. 3.3
  // rule 3(b)), so keep the smallest.
  {
    std::unordered_map<uint64_t, size_t> seen;
    std::vector<Answer> unique;
    for (Answer& a : result.answers) {
      uint64_t h = 0x12345;
      for (const Literal& l : root) {
        h = MixKey(h, a.theta.Apply(store_, l.atom)->hash());
      }
      auto [it, inserted] = seen.emplace(h, unique.size());
      if (inserted) {
        unique.push_back(std::move(a));
      } else {
        Answer& kept = unique[it->second];
        if (a.level < kept.level) {
          kept.level = a.level;
          kept.level_exact = a.level_exact;
        }
      }
    }
    result.answers = std::move(unique);
  }
  result.work = work_ - work_before;
  result.negation_nodes = negation_nodes_ - neg_before;
  if (result.status == GoalStatus::kUnknown) {
    result.diagnostic = work_exhausted_
                            ? "work budget exhausted"
                            : "depth budget exhausted or answers truncated";
  }
  return result;
}

QueryResult GlobalSlsEngine::SolveAtom(const Term* atom) {
  return Solve(Goal{Literal::Pos(atom)});
}

GoalStatus GlobalSlsEngine::StatusOf(const Term* ground_atom) {
  assert(ground_atom->ground());
  MaybeSeedOracle();
  Taint taint;
  SubgoalOutcome so = EvalGroundSubgoal(ground_atom, 0, &taint);
  return so.status;
}

GoalStatus GlobalSlsEngine::StatusOfRelevant(const Term* ground_atom) {
  assert(ground_atom->ground());
  if (OracleApplies()) {
    // Build (or reuse) the persistent oracle, but do NOT seed the memo —
    // the point of the relevance path is to skip the O(atoms) fill and
    // the full-model solve behind it.
    EnsureOracleBuilt();
    if (oracle_session_ != nullptr) {
      // The Session already applies the Thm 4.7 value→status mapping and
      // reports `kUnknown` for an aborted down-cone pass (the pre-abort
      // tape value may not be the atom's well-founded value; the next
      // query resumes the cone's remaining components).
      return oracle_session_->Query(ground_atom).status;
    }
  }
  return StatusOf(ground_atom);  // oracle unavailable: plain search
}

}  // namespace gsls
