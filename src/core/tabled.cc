#include "core/tabled.h"

#include <algorithm>

#include "term/substitution.h"
#include "util/strings.h"

namespace gsls {

/// One path for both modes: the SCC-stratified incremental solver, with
/// `compute_stages` selecting stage-level reconstruction on top of the
/// same schedule — never a different algorithm.
Result<TabledEngine> TabledEngine::FinishCreate(const Program& program,
                                                GroundProgram gp,
                                                TabledOptions opts) {
  SolverOptions sopts = opts.solver;
  sopts.compute_levels = opts.compute_stages;
  // `Cancel()` must observe a token the solver already polls, so one is
  // attached before the first pass: the caller's if supplied, otherwise an
  // engine-owned one.
  std::unique_ptr<CancelToken> owned;
  if (sopts.cancel == nullptr) {
    owned = std::make_unique<CancelToken>();
    sopts.cancel = owned.get();
  }
  auto solver =
      std::make_unique<IncrementalSolver>(std::move(gp), sopts);
  // The engine is a thin adapter over a direct-mode (synchronous,
  // zero-thread) Session — the unified facade of serve/session.h.
  SessionOptions sess_opts;
  sess_opts.compute_levels = opts.compute_stages;
  TabledEngine engine(program, std::make_unique<Session>(Session::Adopt(
                                   std::move(solver), std::move(sess_opts))));
  engine.opts_ = opts;
  engine.token_ = sopts.cancel;
  engine.owned_token_ = std::move(owned);
  return engine;
}

Result<TabledEngine> TabledEngine::Create(const Program& program,
                                          TabledOptions opts) {
  Result<GroundProgram> gp = GroundRelevant(program, opts.grounding);
  if (!gp.ok()) return gp.status();
  return FinishCreate(program, std::move(gp.value()), opts);
}

Result<TabledEngine> TabledEngine::CreateForQuery(const Program& program,
                                                  const Goal& query,
                                                  TabledOptions opts) {
  Result<GroundProgram> gp = GroundRelevant(program, opts.grounding);
  if (!gp.ok()) return gp.status();
  std::vector<const Term*> roots;
  roots.reserve(query.size());
  for (const Literal& l : query) roots.push_back(l.atom);
  return FinishCreate(program, RestrictToRelevant(gp.value(), roots), opts);
}

bool TabledEngine::AssertFact(const Term* fact) {
  return session_->Assert(fact);
}

bool TabledEngine::RetractFact(const Term* fact) {
  return session_->Retract(fact);
}

Result<RuleId> TabledEngine::AssertRule(const Clause& rule) {
  // Own the check to keep this adapter's historical error message.
  if (!rule.ground()) {
    return Status::InvalidArgument(
        StrCat("AssertRule requires a ground clause: ",
               rule.ToString(program_->store())));
  }
  return session_->Assert(rule);
}

bool TabledEngine::RetractRule(RuleId r) {
  return incremental_->RetractRule(r);
}

TruthValue TabledEngine::ValueOf(const Term* ground_atom) const {
  std::optional<AtomId> id = ground().FindAtom(ground_atom);
  // Atoms outside the relevant instantiation have no derivation, hence are
  // unfounded at the first stage.
  if (!id.has_value()) return TruthValue::kFalse;
  return model().Value(*id);
}

GoalStatus TabledEngine::StatusOf(const Term* ground_atom) const {
  switch (ValueOf(ground_atom)) {
    case TruthValue::kTrue: return GoalStatus::kSuccessful;
    case TruthValue::kFalse: return GoalStatus::kFailed;
    case TruthValue::kUndefined: return GoalStatus::kIndeterminate;
  }
  return GoalStatus::kUnknown;
}

TabledEngine::RelevantAnswer TabledEngine::SolveRelevant(
    const Term* ground_atom) const {
  // Adapter: the Session applies the Thm 4.7 status mapping and the
  // failed-at-stage-1 convention for atoms outside the relevant
  // instantiation; repackage its answer into the historical shape.
  SessionAnswer a = session_->Query(ground_atom);
  RelevantAnswer out;
  out.status = a.status;
  out.level = a.level;
  out.query.value = a.value;
  out.query.outcome = a.outcome;
  out.query.true_stage = a.true_stage;
  out.query.false_stage = a.false_stage;
  out.query.cone_components = a.cone_components;
  out.query.resolved_components = a.resolved_components;
  out.query.memo_hits = a.memo_hits;
  out.query.cone_atoms = a.cone_atoms;
  return out;
}

std::optional<Ordinal> TabledEngine::LevelOf(const Term* ground_atom) const {
  std::optional<AtomId> id = ground().FindAtom(ground_atom);
  if (!id.has_value()) return Ordinal::Finite(1);  // fails at stage 1
  if (!has_stages()) return std::nullopt;  // levels were not requested
  const WfsModel& m = wfs();
  switch (m.model.Value(*id)) {
    case TruthValue::kTrue:
      return Ordinal::Finite(m.true_stage[*id]);
    case TruthValue::kFalse:
      return Ordinal::Finite(m.false_stage[*id]);
    case TruthValue::kUndefined:
      return std::nullopt;
  }
  return std::nullopt;
}

template <typename Fn>
void TabledEngine::MatchPositives(const Goal& goal, size_t index,
                                  Substitution& subst,
                                  Fn&& on_complete) const {
  while (index < goal.size() && !goal[index].positive) ++index;
  if (index == goal.size()) {
    on_complete(subst);
    return;
  }
  const Term* pattern = goal[index].atom;
  // Candidate atoms: every registered atom of the same predicate whose
  // value is not false (false atoms cannot contribute to a success or to an
  // undefined instance; instances using them are failed and enumerate to
  // nothing).
  for (AtomId a = 0; a < ground().atom_count(); ++a) {
    const Term* atom = ground().AtomTerm(a);
    if (atom->functor() != pattern->functor()) continue;
    if (model().IsFalse(a)) continue;
    Substitution extended = subst;
    if (!Unify(pattern, atom, &extended)) continue;
    MatchPositives(goal, index + 1, extended, on_complete);
  }
}

QueryResult TabledEngine::Solve(const Goal& goal) const {
  QueryResult result;
  TermStore& store = program_->store();
  std::vector<VarId> goal_vars;
  for (const Literal& l : goal) CollectVars(l.atom, &goal_vars);

  bool any_success = false;
  bool any_undefined = false;
  bool any_floundered = false;
  Ordinal min_success;
  bool have_min = false;

  Substitution empty;
  Substitution scratch = empty;
  MatchPositives(goal, 0, scratch, [&](const Substitution& subst) {
    // All positive literals are matched to non-false registered atoms.
    // Evaluate the instance three-valued.
    bool instance_true = true;
    bool instance_false = false;
    Ordinal level;  // max stage over the literals (Thm. 4.5)
    for (const Literal& l : goal) {
      const Term* atom = subst.Apply(store, l.atom);
      if (l.positive) {
        std::optional<AtomId> id = ground().FindAtom(atom);
        // Positive literals were matched against registered atoms.
        TruthValue v = model().Value(*id);
        if (v == TruthValue::kUndefined) instance_true = false;
        if (v == TruthValue::kTrue && has_stages()) {
          level = Ordinal::Lub(level,
                               Ordinal::Finite(wfs().true_stage[*id]));
        }
      } else {
        if (!atom->ground()) {
          // A variable occurs only in negative literals: the instance
          // flounders (cf. the `term` guard of Sec. 6 to prevent this).
          any_floundered = true;
          instance_true = false;
          instance_false = true;
          break;
        }
        switch (ValueOf(atom)) {
          case TruthValue::kTrue:
            instance_false = true;
            instance_true = false;
            break;
          case TruthValue::kUndefined:
            instance_true = false;
            break;
          case TruthValue::kFalse: {
            if (!has_stages()) break;
            std::optional<AtomId> id = ground().FindAtom(atom);
            uint32_t stage = id.has_value() ? wfs().false_stage[*id] : 1;
            level = Ordinal::Lub(level, Ordinal::Finite(stage));
            break;
          }
        }
      }
      if (instance_false) break;
    }
    if (instance_false) return;
    if (!instance_true) {
      any_undefined = true;
      return;
    }
    any_success = true;
    if (result.answers.size() >= opts_.max_answers) return;
    Answer ans;
    for (VarId v : goal_vars) {
      const Term* image = subst.Apply(store, store.Var(v));
      if (!(image->IsVar() && image->var() == v)) ans.theta.Bind(v, image);
    }
    ans.level = level;
    ans.level_exact = has_stages();
    if (!have_min || ans.level < min_success) {
      min_success = ans.level;
      have_min = true;
    }
    result.answers.push_back(std::move(ans));
  });

  // Deduplicate answers (different matchings can induce the same grounding
  // of the goal variables).
  {
    std::unordered_set<uint64_t> seen;
    std::vector<Answer> unique;
    for (Answer& a : result.answers) {
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (const Literal& l : goal) {
        h = h * 0xff51afd7ed558ccdULL + a.theta.Apply(store, l.atom)->hash();
      }
      if (seen.insert(h).second) unique.push_back(std::move(a));
    }
    result.answers = std::move(unique);
  }

  if (any_success) {
    result.status = GoalStatus::kSuccessful;
    result.level = min_success;
    result.level_exact = has_stages();
  } else if (any_floundered) {
    result.status = GoalStatus::kFloundered;
  } else if (any_undefined) {
    result.status = GoalStatus::kIndeterminate;
  } else {
    result.status = GoalStatus::kFailed;
    // Failure level of a compound goal is not reconstructed here; atom
    // queries get it from `LevelOf`.
    if (goal.size() == 1 && goal[0].positive && goal[0].atom->ground()) {
      if (auto lvl = LevelOf(goal[0].atom); lvl.has_value()) {
        result.level = *lvl;
        result.level_exact = true;
      }
    }
  }
  result.floundered_somewhere = any_floundered;
  return result;
}

}  // namespace gsls
