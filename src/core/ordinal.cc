#include "core/ordinal.h"

#include <cassert>

#include "util/strings.h"

namespace gsls {

Ordinal Ordinal::Finite(uint64_t n) {
  Ordinal o;
  if (n > 0) o.terms_.push_back(Term{0, n});
  return o;
}

Ordinal Ordinal::OmegaPower(uint32_t k) { return OmegaTerm(k, 1); }

Ordinal Ordinal::OmegaTerm(uint32_t k, uint64_t c) {
  Ordinal o;
  if (c > 0) o.terms_.push_back(Term{k, c});
  return o;
}

uint64_t Ordinal::FiniteValue() const {
  assert(IsFinite());
  return terms_.empty() ? 0 : terms_[0].coefficient;
}

Ordinal Ordinal::operator+(const Ordinal& other) const {
  if (other.IsZero()) return *this;
  if (IsZero()) return other;
  Ordinal out;
  uint32_t lead = other.terms_[0].exponent;
  // Left addend terms with exponent below the right addend's leading
  // exponent are absorbed.
  for (const Term& t : terms_) {
    if (t.exponent > lead) {
      out.terms_.push_back(t);
    } else if (t.exponent == lead) {
      out.terms_.push_back(
          Term{lead, t.coefficient + other.terms_[0].coefficient});
    }
  }
  if (out.terms_.empty() || out.terms_.back().exponent != lead) {
    out.terms_.push_back(other.terms_[0]);
  }
  for (size_t i = 1; i < other.terms_.size(); ++i) {
    out.terms_.push_back(other.terms_[i]);
  }
  return out;
}

Ordinal Ordinal::Predecessor() const {
  assert(IsSuccessor());
  Ordinal out = *this;
  if (out.terms_.back().coefficient == 1) {
    out.terms_.pop_back();
  } else {
    out.terms_.back().coefficient -= 1;
  }
  return out;
}

std::strong_ordering Ordinal::operator<=>(const Ordinal& other) const {
  size_t n = std::min(terms_.size(), other.terms_.size());
  for (size_t i = 0; i < n; ++i) {
    if (terms_[i].exponent != other.terms_[i].exponent) {
      return terms_[i].exponent <=> other.terms_[i].exponent;
    }
    if (terms_[i].coefficient != other.terms_[i].coefficient) {
      return terms_[i].coefficient <=> other.terms_[i].coefficient;
    }
  }
  return terms_.size() <=> other.terms_.size();
}

std::string Ordinal::ToString() const {
  if (terms_.empty()) return "0";
  std::vector<std::string> parts;
  for (const Term& t : terms_) {
    if (t.exponent == 0) {
      parts.push_back(StrCat(t.coefficient));
    } else {
      std::string base = t.exponent == 1 ? "w" : StrCat("w^", t.exponent);
      parts.push_back(t.coefficient == 1 ? base
                                         : StrCat(base, "*", t.coefficient));
    }
  }
  return StrJoin(parts, "+");
}

}  // namespace gsls
