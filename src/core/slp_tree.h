#ifndef GSLS_CORE_SLP_TREE_H_
#define GSLS_CORE_SLP_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "lang/program.h"
#include "term/substitution.h"

namespace gsls {

/// Kind of a materialized SLP-tree node.
enum class SlpNodeKind : uint8_t {
  kInternal,     ///< A positive literal was selected and resolved.
  kActiveLeaf,   ///< Empty or all-negative goal (Def. 3.2).
  kDeadLeaf,     ///< Selected positive literal unifies with no clause head.
  kTruncated,    ///< Expansion stopped by a budget (depth/node cap).
  kInfiniteLoop, ///< The ground goal repeats along its branch: the branch
                 ///< is infinite and (Sec. 7 item 1) contributes no active
                 ///< leaves. Not a truncation: statuses stay exact.
};

/// A node of an explicitly materialized SLP-tree (Def. 3.2). Used by the
/// figure-reproduction benches and examples; the query engine itself
/// searches without materializing.
struct SlpNode {
  Goal goal;
  SlpNodeKind kind = SlpNodeKind::kInternal;
  size_t depth = 0;
  /// Index of the program clause resolved to reach this node (SIZE_MAX for
  /// the root).
  size_t clause_index = SIZE_MAX;
  /// Composition of the mgus along the branch to this node: for active
  /// leaves this is the computed most general unifier of Def. 3.2.
  Substitution computed_mgu;
  std::vector<std::unique_ptr<SlpNode>> children;
};

struct SlpTreeOptions {
  size_t max_depth = 128;
  size_t max_nodes = 100'000;
  /// Detect ground goals repeating along a branch and close the branch as
  /// an infinite (failed) one instead of expanding it forever.
  bool prune_repeated_goals = true;
};

/// An SLP-tree for a goal under the positivistic leftmost selection rule,
/// materialized breadth-first up to the configured budgets.
class SlpTree {
 public:
  static SlpTree Build(const Program& program, const Goal& root,
                       SlpTreeOptions opts = {});

  const SlpNode& root() const { return *root_; }
  size_t node_count() const { return node_count_; }
  /// True iff some branch hit a budget before resolving.
  bool truncated() const { return truncated_; }

  /// Active leaves in left-to-right order.
  std::vector<const SlpNode*> ActiveLeaves() const;

  /// Indented rendering, one goal per line (the shape of Figures 1-3).
  std::string ToString(const TermStore& store) const;

 private:
  std::unique_ptr<SlpNode> root_;
  size_t node_count_ = 0;
  bool truncated_ = false;
};

}  // namespace gsls

#endif  // GSLS_CORE_SLP_TREE_H_
