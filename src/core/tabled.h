#ifndef GSLS_CORE_TABLED_H_
#define GSLS_CORE_TABLED_H_

#include <memory>
#include <optional>

#include "core/engine.h"
#include "ground/grounder.h"
#include "serve/session.h"
#include "solver/incremental.h"
#include "util/cancel.h"
#include "util/status.h"
#include "wfs/wfs.h"

namespace gsls {

/// Options for `TabledEngine`.
struct TabledOptions {
  GroundingOptions grounding;
  size_t max_answers = 1'000'000;
  /// Compute the V_P stage levels (Def. 2.4) alongside the model,
  /// reconstructed from the SCC schedule (solver/stages.h) as each
  /// component is solved — not via the quadratic V_P iteration, which no
  /// production path runs anymore. Levels parallelize and survive
  /// `AssertFact`/`RetractFact` deltas like the model itself. When off,
  /// `LevelOf` has no level to report for registered atoms and answers
  /// carry `level_exact == false`; the solve skips every levels cost.
  bool compute_stages = true;
  /// Tuning of the SCC solver, notably `SolverOptions::num_threads`
  /// (work-stealing parallel per-SCC scheduling; model *and* levels are
  /// thread-count invariant). `compute_levels` is derived from
  /// `compute_stages` above.
  SolverOptions solver;
};

/// The effective variant of global SLS-resolution for function-free
/// programs (Sec. 7): memoing prunes positive loops (tabling over the
/// relevant Herbrand instantiation) and negative loops (bottom-up
/// well-founded fixpoint, the polynomial algorithm of footnote 5). Query
/// answering then uses the exact correspondence of Theorem 4.7:
/// a ground goal is successful iff its positive atoms are well-founded-true
/// and its negated atoms well-founded-false, and the level of a determined
/// goal equals the maximum stage of its literals (Thm. 4.5 / Cor. 4.6).
///
/// Every engine runs on one persistent `IncrementalSolver`: the model (and,
/// with `compute_stages`, the exact levels) comes from the near-linear
/// SCC-stratified pipeline, and `AssertFact`/`RetractFact` ground deltas
/// re-solve only the affected up-cone between queries — there is no
/// separate "staged" engine mode anymore.
///
/// Termination is guaranteed whenever the grounding fits the configured
/// budgets — always achievable for function-free programs, where the
/// relevant instantiation is finite. Programs with function symbols can be
/// handled up to a universe depth bound (the result is then exact for goals
/// whose derivations stay within the bound).
class TabledEngine {
 public:
  /// Grounds `program` and computes its well-founded model via the
  /// SCC-stratified incremental solver — with exact stage levels when
  /// `opts.compute_stages`.
  static Result<TabledEngine> Create(const Program& program,
                                     TabledOptions opts = {});

  /// Like `Create`, but restricts the tables to the rules relevant to
  /// `roots` (goal-directed memoing; sound by the relevance property of the
  /// well-founded semantics).
  static Result<TabledEngine> CreateForQuery(const Program& program,
                                             const Goal& query,
                                             TabledOptions opts = {});

  /// Well-founded truth value of a ground atom. Atoms outside the relevant
  /// instantiation are false.
  TruthValue ValueOf(const Term* ground_atom) const;

  /// Status of the goal `<- atom` under global SLS-resolution (Thm. 4.7).
  GoalStatus StatusOf(const Term* ground_atom) const;

  /// Level of `<- atom`: the stage of the corresponding literal
  /// (Cor. 4.6). Empty for undefined atoms (no level exists) and for
  /// registered atoms when the engine was created without stages.
  std::optional<Ordinal> LevelOf(const Term* ground_atom) const;

  /// Outcome of a goal-directed (`SolveRelevant`) atom query.
  struct RelevantAnswer {
    GoalStatus status = GoalStatus::kUnknown;
    /// Level of the determined goal (Cor. 4.6); empty for indeterminate
    /// atoms and on engines created without `compute_stages`.
    std::optional<Ordinal> level;
    /// The underlying solver pass, including its cost counters
    /// (cone size, components re-solved, memo hits).
    IncrementalSolver::QueryAnswer query;
  };

  /// Goal-directed status of the ground goal `<- atom`: instead of
  /// refreshing the whole model (`StatusOf`/`ValueOf` via `Model()`),
  /// solves only the query atom's *down-cone* — the components its truth
  /// can depend on — serving every still-valid component from the
  /// solver's per-component memo (`IncrementalSolver::QueryAtom`). The
  /// status and level are exactly what `StatusOf`/`LevelOf` would
  /// report; the cost is proportional to the relevant subprogram, not
  /// the program. Fact/rule deltas between calls invalidate exactly the
  /// components they touch, so interleaving deltas, `SolveRelevant`, and
  /// full `Solve`/`StatusOf` reads is always exact — see docs/serving.md
  /// for the staleness contract. Atoms outside the relevant
  /// instantiation are failed at level 1, with no solving.
  ///
  /// Deprecated spelling: a thin adapter over the engine's internal
  /// `Session::Query` — prefer `gsls::Session` (serve/session.h), whose
  /// `SessionAnswer` carries the same status/level/cost fields.
  RelevantAnswer SolveRelevant(const Term* ground_atom) const;

  /// Evaluates a (possibly nonground) goal: enumerates every answer
  /// substitution grounding the goal into well-founded truth, with levels
  /// when stages were computed.
  QueryResult Solve(const Goal& goal) const;

  /// Asserts/retracts a ground fact; the next read incrementally
  /// re-solves the affected up-cone of components (`IncrementalSolver`) —
  /// including its stage levels on engines created with `compute_stages`.
  /// Returns true iff the fact base changed (false on a no-op delta: fact
  /// already present/absent). Deltas are ground-level: they toggle unit
  /// rules, they do not re-ground non-unit rules.
  ///
  /// Deprecated spellings: thin adapters over the engine's internal
  /// `Session` — prefer `gsls::Session::Assert`/`Retract`
  /// (serve/session.h), the consolidated delta vocabulary.
  bool AssertFact(const Term* fact);
  bool RetractFact(const Term* fact);

  /// Asserts an arbitrary *ground* rule between queries: interns its
  /// atoms, appends it to the tables (or re-enables the identical
  /// retracted rule), and repairs the condensation locally
  /// (analysis/dynamic_condensation.h) — components may merge, and only
  /// the affected up-cone re-solves on the next read, stage levels
  /// included. Returns the rule's id (the retraction handle), or
  /// InvalidArgument for a nonground clause.
  ///
  /// Deprecated spelling: thin adapter over `Session::Assert(Clause)`.
  Result<RuleId> AssertRule(const Clause& rule);

  /// Retracts rule `r` — from the base grounding or a previous
  /// `AssertRule`. The head's component re-condenses if the rule held it
  /// together (it may split). Returns true iff the rule was enabled.
  bool RetractRule(RuleId r);

  /// Refreshes the model — the lazy full-or-incremental solve every read
  /// (`ValueOf`/`StatusOf`/`Solve`) performs implicitly — and reports the
  /// pass outcome. `kCompleted` means the model is exact. `kCancelled` /
  /// `kDeadlineExceeded` mean the pass aborted at a checkpoint: the model
  /// is the *anytime* partial state (every component either fully solved
  /// or untouched; see docs/serving.md) and the unfinished remainder stays
  /// queued. Clear the stop condition (`ResetCancel`, or a fresh deadline)
  /// and call `Refresh` again to resume exactly the remaining work.
  SolveOutcome Refresh() { return incremental_->Model().outcome; }

  /// Requests cooperative cancellation of the in-flight (or next) solve
  /// pass. Thread-safe; callable from any thread while another thread is
  /// inside `Solve`/`StatusOf`/`Refresh`. The pass stops at its next
  /// checkpoint with the abort invariant above. The request *latches*:
  /// every later pass also aborts immediately until `ResetCancel`.
  void Cancel() { token_->Cancel(); }

  /// Clears a previous `Cancel` so the next read resumes solving.
  void ResetCancel() { token_->Reset(); }

  /// The cancellation token the engine's solver polls — the one `Cancel`
  /// trips. `TabledOptions::solver.cancel` when the caller supplied one,
  /// otherwise a token the engine owns (attached at creation, so `Cancel`
  /// works out of the box).
  CancelToken* cancel_token() const { return token_; }

  /// Deadline / step-budget for every subsequent solve pass (0 = none);
  /// see `SolverOptions::deadline_ns` / `step_budget`. Passes re-read
  /// these at entry, so setting a fresh deadline after a
  /// `kDeadlineExceeded` pass resumes the remaining work under it.
  void SetDeadlineNs(uint64_t deadline_ns) {
    incremental_->SetDeadlineNs(deadline_ns);
  }
  void SetStepBudget(uint64_t step_budget) {
    incremental_->SetStepBudget(step_budget);
  }

  /// The persistent solver behind this engine (delta mask, stats,
  /// diagnostics).
  const IncrementalSolver& solver() const { return *incremental_; }

  /// The direct-mode `Session` every delta and goal-directed query of this
  /// engine routes through — the unified facade (serve/session.h).
  Session& session() { return *session_; }
  const Session& session() const { return *session_; }

  /// Telemetry dump of the persistent solver: avoided-work stats, pipeline
  /// diagnostics, condensation-repair stats, and — when the engine was
  /// created with `TabledOptions::solver.telemetry` — the metrics registry
  /// table (per-delta latency/cone histograms with percentiles).
  void DumpTelemetry(std::ostream& os) const {
    incremental_->DumpTelemetry(os);
  }

  const GroundProgram& ground() const { return incremental_->program(); }
  const Program& program() const { return *program_; }

 private:
  TabledEngine(const Program& program, std::unique_ptr<Session> session)
      : program_(&program),
        session_(std::move(session)),
        incremental_(&session_->solver()) {}

  static Result<TabledEngine> FinishCreate(const Program& program,
                                           GroundProgram gp,
                                           TabledOptions opts);

  /// The current well-founded model (lazily delta-refreshed; stage levels
  /// ride along when computed). No copy per delta — the up-cone re-solve
  /// stays the only per-delta cost.
  const WfsModel& wfs() const { return incremental_->Model(); }
  const Interpretation& model() const { return wfs().model; }

  bool has_stages() const { return opts_.compute_stages; }

  /// Backtracking matcher over the atom registry for the positive part of
  /// a goal; `on_complete` is invoked once per grounding substitution.
  template <typename Fn>
  void MatchPositives(const Goal& goal, size_t index, Substitution& subst,
                      Fn&& on_complete) const;

  const Program* program_;
  /// The facade owning the solver. Direct mode: zero extra threads; every
  /// public delta/query adapter below delegates here.
  std::unique_ptr<Session> session_;
  /// Cached view of `session_`'s solver for the inline diagnostics paths
  /// (stable across engine moves: both live behind unique_ptrs).
  IncrementalSolver* incremental_ = nullptr;
  TabledOptions opts_;
  /// Engine-owned token attached when the caller supplied none (behind a
  /// pointer: `TabledEngine` moves through `Result`, atomics do not).
  std::unique_ptr<CancelToken> owned_token_;
  CancelToken* token_ = nullptr;  ///< the attached token (owned or caller's)
};

}  // namespace gsls

#endif  // GSLS_CORE_TABLED_H_
