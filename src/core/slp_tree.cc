#include "core/slp_tree.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/strings.h"

namespace gsls {

namespace {

uint64_t GroundGoalKey(const Goal& goal) {
  std::vector<uint64_t> keys;
  keys.reserve(goal.size());
  for (const Literal& l : goal) {
    if (!l.atom->ground()) return 0;
    keys.push_back(l.atom->hash() * 2 + (l.positive ? 1 : 0));
  }
  std::sort(keys.begin(), keys.end());
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (uint64_t k : keys) {
    h ^= k + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xc4ceb9fe1a85ec53ULL;
  }
  return h == 0 ? 1 : h;
}

size_t SelectPositive(const Goal& goal) {
  for (size_t i = 0; i < goal.size(); ++i) {
    if (goal[i].positive) return i;
  }
  return SIZE_MAX;
}

void CollectActiveLeaves(const SlpNode* node,
                         std::vector<const SlpNode*>* out) {
  if (node->kind == SlpNodeKind::kActiveLeaf) out->push_back(node);
  for (const auto& c : node->children) CollectActiveLeaves(c.get(), out);
}

void Render(const SlpNode* node, const TermStore& store, int indent,
            std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(GoalToString(store, node->goal));
  switch (node->kind) {
    case SlpNodeKind::kActiveLeaf:
      out->append("   [active leaf]");
      break;
    case SlpNodeKind::kDeadLeaf:
      out->append("   [dead leaf]");
      break;
    case SlpNodeKind::kTruncated:
      out->append("   [...truncated]");
      break;
    case SlpNodeKind::kInfiniteLoop:
      out->append("   [infinite branch: goal repeats]");
      break;
    case SlpNodeKind::kInternal:
      break;
  }
  out->push_back('\n');
  for (const auto& c : node->children) Render(c.get(), store, indent + 1, out);
}

}  // namespace

SlpTree SlpTree::Build(const Program& program, const Goal& root,
                       SlpTreeOptions opts) {
  TermStore& store = program.store();
  SlpTree tree;
  tree.root_ = std::make_unique<SlpNode>();
  tree.root_->goal = root;
  tree.root_->depth = 0;
  tree.node_count_ = 1;

  // Ancestor goal keys per pending node, for repeated-goal (infinite
  // branch) detection.
  std::unordered_map<const SlpNode*, std::vector<uint64_t>> paths;
  paths[tree.root_.get()] = {};

  std::deque<SlpNode*> frontier{tree.root_.get()};
  while (!frontier.empty()) {
    SlpNode* node = frontier.front();
    frontier.pop_front();
    std::vector<uint64_t> path = std::move(paths[node]);
    paths.erase(node);
    size_t sel = SelectPositive(node->goal);
    if (sel == SIZE_MAX) {
      node->kind = SlpNodeKind::kActiveLeaf;
      continue;
    }
    uint64_t key = 0;
    if (opts.prune_repeated_goals) {
      key = GroundGoalKey(node->goal);
      if (key != 0 &&
          std::find(path.begin(), path.end(), key) != path.end()) {
        node->kind = SlpNodeKind::kInfiniteLoop;
        continue;
      }
    }
    if (node->depth >= opts.max_depth || tree.node_count_ >= opts.max_nodes) {
      node->kind = SlpNodeKind::kTruncated;
      tree.truncated_ = true;
      continue;
    }
    if (key != 0) path.push_back(key);
    const Literal selected = node->goal[sel];
    bool any_child = false;
    for (size_t ci : program.ClausesFor(selected.atom->functor())) {
      if (tree.node_count_ >= opts.max_nodes) {
        tree.truncated_ = true;
        break;
      }
      Clause variant = RenameApart(store, program.clauses()[ci]);
      Substitution mgu;
      if (!Unify(selected.atom, variant.head, &mgu)) continue;
      auto child = std::make_unique<SlpNode>();
      child->depth = node->depth + 1;
      child->clause_index = ci;
      child->goal.reserve(node->goal.size() - 1 + variant.body.size());
      for (size_t i = 0; i < sel; ++i) {
        child->goal.push_back(Literal{mgu.Apply(store, node->goal[i].atom),
                                      node->goal[i].positive});
      }
      for (const Literal& b : variant.body) {
        child->goal.push_back(Literal{mgu.Apply(store, b.atom), b.positive});
      }
      for (size_t i = sel + 1; i < node->goal.size(); ++i) {
        child->goal.push_back(Literal{mgu.Apply(store, node->goal[i].atom),
                                      node->goal[i].positive});
      }
      // Queries are literal sets (Def. 1.3): drop duplicate literals so
      // repeated-goal detection sees set equality.
      Goal dedup;
      dedup.reserve(child->goal.size());
      for (const Literal& l : child->goal) {
        if (std::find(dedup.begin(), dedup.end(), l) == dedup.end()) {
          dedup.push_back(l);
        }
      }
      child->goal = std::move(dedup);
      child->computed_mgu = node->computed_mgu.ComposeWith(store, mgu);
      paths[child.get()] = path;
      frontier.push_back(child.get());
      node->children.push_back(std::move(child));
      ++tree.node_count_;
      any_child = true;
    }
    if (!any_child && node->children.empty() &&
        node->kind == SlpNodeKind::kInternal) {
      node->kind = SlpNodeKind::kDeadLeaf;
    }
  }
  return tree;
}

std::vector<const SlpNode*> SlpTree::ActiveLeaves() const {
  std::vector<const SlpNode*> out;
  CollectActiveLeaves(root_.get(), &out);
  return out;
}

std::string SlpTree::ToString(const TermStore& store) const {
  std::string out;
  Render(root_.get(), store, 0, &out);
  return out;
}

}  // namespace gsls
