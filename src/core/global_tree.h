#ifndef GSLS_CORE_GLOBAL_TREE_H_
#define GSLS_CORE_GLOBAL_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ordinal.h"
#include "core/slp_tree.h"

namespace gsls {

/// Node kinds of a global tree (Def. 3.3).
enum class GlobalNodeKind : uint8_t { kTree, kNegation, kNonground };

/// A node of an explicitly materialized global tree: tree nodes carry their
/// SLP-tree; negation nodes correspond to active leaves; nonground nodes
/// mark unsafe negative subgoals. Statuses and ordinal levels are computed
/// bottom-up by the rules of Def. 3.3 (with `kUnknown` for subtrees cut off
/// by a budget, and `kIndeterminate` for detected negative loops).
struct GlobalNode {
  GlobalNodeKind kind;
  /// Tree nodes: the goal of the SLP-tree. Negation nodes: the active leaf
  /// they correspond to. Nonground nodes: the single offending literal.
  Goal goal;
  std::unique_ptr<SlpTree> slp;  ///< Only for tree nodes.
  GoalStatus status = GoalStatus::kUnknown;
  Ordinal level;
  bool level_exact = false;
  std::vector<std::unique_ptr<GlobalNode>> children;
};

struct GlobalTreeOptions {
  SlpTreeOptions slp;
  /// Maximum nesting of negation nodes below the root.
  size_t max_negation_depth = 16;
  size_t max_nodes = 200'000;
};

/// Materializes the global tree for a goal (Def. 3.3), for inspection and
/// figure reproduction. Statuses/levels follow the bottom-up calculus; a
/// ground subgoal already being expanded on the current path (negative
/// loop) is reported as `kIndeterminate`.
class GlobalTree {
 public:
  static GlobalTree Build(const Program& program, const Goal& root,
                          GlobalTreeOptions opts = {});

  const GlobalNode& root() const { return *root_; }
  GoalStatus status() const { return root_->status; }
  const Ordinal& level() const { return root_->level; }
  bool level_exact() const { return root_->level_exact; }
  size_t node_count() const { return node_count_; }

  /// Indented rendering in the style of Figure 4: tree nodes, negation
  /// nodes (rendered as `(neg)`), statuses, levels.
  std::string ToString(const TermStore& store) const;

 private:
  std::unique_ptr<GlobalNode> root_;
  size_t node_count_ = 0;
};

}  // namespace gsls

#endif  // GSLS_CORE_GLOBAL_TREE_H_
