#ifndef GSLS_CORE_ENGINE_H_
#define GSLS_CORE_ENGINE_H_

#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/ordinal.h"
#include "lang/program.h"
#include "solver/incremental.h"
#include "term/substitution.h"
#include "util/cancel.h"
#include "util/status.h"

namespace gsls {

/// Status of a goal in a global tree (Def. 3.3 rule 4, plus `kUnknown`).
///
/// `kIndeterminate` is reported when the engine *proves* the evaluation
/// recurses through negation (a negative loop over ground subgoals), the
/// situation the paper calls indeterminate. `kUnknown` is reported when a
/// resource budget was exhausted first; the paper's procedure would simply
/// not have terminated yet. Global SLS-resolution is not effective
/// (Sec. 7), so a faithful implementation must have both escape hatches.
enum class GoalStatus : uint8_t {
  kSuccessful,
  kFailed,
  kFloundered,
  kIndeterminate,
  kUnknown,
};

const char* GoalStatusName(GoalStatus s);

/// Literal-selection component of the computation rule (Def. 3.1).
enum class SelectionMode : uint8_t {
  /// Positivistic: positive literals strictly ahead of negative ones
  /// (required for completeness; part of the preferential rule).
  kPositivistic,
  /// Counterexample mode for Example 3.2: selects the leftmost negative
  /// literal ahead of positive ones. Not safe for completeness.
  kNegativesFirst,
  /// Strict leftmost literal of either sign (SLDNF-style order).
  kLeftmost,
};

/// Engine configuration: computation rule plus resource budgets (the paper's
/// procedure is ideal/non-effective; budgets make the search an anytime
/// approximation that is exact whenever it reports a well-determined
/// status).
struct EngineOptions {
  SelectionMode selection = SelectionMode::kPositivistic;
  /// Negatively parallel rule (Def. 3.1): evaluate every ground negative
  /// literal of an active leaf, combining statuses; `false` evaluates them
  /// left-to-right and gets stuck on the first undetermined one
  /// (Example 3.3's sequential counterexample).
  bool negatively_parallel = true;
  /// Prune a branch when a ground goal repeats (as a literal set) along it:
  /// such a branch repeats forever, and infinite branches are failed.
  bool prune_repeated_goals = true;
  /// SLG-style simplification: ground positive literals whose status is
  /// already memoized are resolved against the memo (success deletes the
  /// literal, carrying its level contribution; failure prunes the branch).
  /// Status-preserving by Lemma 4.1 / Thm. 4.7.
  bool memo_simplification = true;
  /// Seed the memo from the bottom-up SCC-stratified solver (`SolveWfs`,
  /// src/solver/) before the first query, making memo simplification an
  /// exact oracle: every registered ground atom resolves in O(1) with the
  /// status Thm. 4.7 prescribes, and (when `compute_levels` is set) the
  /// level Cor. 4.6 prescribes, reconstructed from the SCC schedule
  /// (solver/stages.h) alongside the model — the quadratic V_P iteration
  /// is not involved. Engaged only where it is provably exact and
  /// complete: function-free programs under the preferential rule
  /// (positivistic selection, negatively parallel, memo simplification
  /// on). Otherwise the engine searches as before.
  bool bottom_up_oracle = true;
  /// Compute ordinal levels (Def. 3.3) alongside statuses.
  bool compute_levels = true;
  /// Tuning of the bottom-up oracle's SCC solver, notably
  /// `SolverOptions::num_threads`: with more than one thread the oracle's
  /// initial solve and its per-delta up-cone re-solves schedule components
  /// on a work-stealing pool. The model (and thus every status served
  /// from the memo) is identical at any thread count.
  SolverOptions solver;

  size_t max_slp_depth = 512;        ///< Max resolution depth per SLP tree.
  size_t max_negation_depth = 96;    ///< Max nesting through negation nodes.
  size_t max_work = 2'000'000;       ///< Total resolution steps budget.
  size_t max_answers = 100'000;      ///< Stop collecting answers after this.
};

/// One computed answer for a goal: the composed most general unifier along
/// a successful branch (Def. 3.4) and the level of the root tree node with
/// respect to it (Def. 3.3 rule 3(b)).
struct Answer {
  Substitution theta;
  Ordinal level;
  bool level_exact = false;
};

/// Result of evaluating one goal.
struct QueryResult {
  GoalStatus status = GoalStatus::kUnknown;
  std::vector<Answer> answers;
  /// Failure level when failed; minimum success level when successful.
  Ordinal level;
  bool level_exact = false;
  /// Some node under the root floundered (a goal can be both successful
  /// and floundered; no other pair of statuses coexists).
  bool floundered_somewhere = false;
  size_t work = 0;            ///< Resolution steps performed.
  size_t negation_nodes = 0;  ///< Negation nodes traversed.
  std::string diagnostic;
};

/// Top-down query evaluation by global SLS-resolution (Def. 3.5): SLP-tree
/// search with recursive evaluation of the ground negative subgoals at
/// active leaves, a memo table for ground subgoal statuses, negative-loop
/// detection, and bottom-up computation of statuses and ordinal levels per
/// Def. 3.3.
///
/// Sound for all programs under a safe rule (Thm. 5.4); complete for
/// nonfloundering queries under the preferential rule (Thm. 6.2), up to the
/// budgets (exhaustion reports `kUnknown`, never a wrong determination).
class Session;  // serve/session.h — the unified facade the engine adapts

class GlobalSlsEngine {
 public:
  explicit GlobalSlsEngine(const Program& program, EngineOptions opts = {});
  ~GlobalSlsEngine();  // out-of-line: `Session` is incomplete here

  /// Evaluates an arbitrary goal, enumerating answer substitutions.
  QueryResult Solve(const Goal& goal);

  /// Evaluates the goal `<- atom`.
  QueryResult SolveAtom(const Term* atom);

  /// Status of the ground goal `<- atom` (memoized across calls).
  GoalStatus StatusOf(const Term* ground_atom);

  /// Deprecated spelling: prefer `gsls::Session::Query` (serve/session.h),
  /// which returns the unified `SessionAnswer` (value + stage + outcome +
  /// cost counters) instead of a bare status. This remains as a thin
  /// adapter over the engine's internal `Session`.
  ///
  /// Goal-directed variant of `StatusOf`: when the bottom-up oracle
  /// applies (see `EngineOptions::bottom_up_oracle`), answers from the
  /// oracle's *down-cone* query mode (`IncrementalSolver::QueryAtom`) —
  /// only the components the atom's truth depends on are solved, and the
  /// full memo seed of `MaybeSeedOracle` (one entry per registered atom)
  /// is skipped entirely. The status is exactly what `StatusOf` reports
  /// (Thm. 4.7 on the relevant subprogram); the cost is proportional to
  /// the relevant subprogram, and repeated queries hit the oracle's
  /// per-component memo. Falls back to the plain memoized search when
  /// the oracle does not apply (counterexample rules, function symbols,
  /// over-budget grounding).
  GoalStatus StatusOfRelevant(const Term* ground_atom);

  /// Clears the ground-subgoal memo table (the bottom-up oracle reseeds it
  /// on the next query when enabled). The oracle's `IncrementalSolver` and
  /// its solved model are retained, so reseeding costs one memo fill, not
  /// a re-ground and re-solve.
  void ClearMemo() {
    memo_.clear();
    oracle_attempted_ = false;
  }

  /// Asserts a *ground* rule through the persistent bottom-up oracle: the
  /// rule joins the oracle's ground program (or re-enables the identical
  /// retracted rule), the condensation is repaired locally
  /// (analysis/dynamic_condensation.h), and the memo is cleared so the
  /// next query reseeds from the incrementally re-solved model — no
  /// re-ground, no wholesale oracle rebuild, no memo fill before the next
  /// query. This is the ground-delta alternative to `Program::AddClause`
  /// + `ClearMemo`; rule deltas are logged and replayed if the clause
  /// base later grows and forces an oracle rebuild, so they are never
  /// silently lost. Builds the oracle on first use; returns
  /// FailedPrecondition when the oracle does not apply to this engine
  /// (see `EngineOptions::bottom_up_oracle` and the exactness
  /// conditions), InvalidArgument for a nonground clause. The returned id
  /// is valid until the next oracle rebuild — retraction is therefore
  /// *content*-addressed, see below. (Thin adapter over the internal
  /// `Session::Assert(Clause)` — new code should open a `gsls::Session`
  /// directly.)
  Result<RuleId> AssertRule(const Clause& rule);

  /// Retracts the ground rule identical to `rule` (from `AssertRule` or
  /// the base grounding). Content-addressed so the handle survives oracle
  /// rebuilds. Returns true iff such a rule was enabled; clears the memo
  /// on change.
  bool RetractRule(const Clause& rule);

  /// Requests cooperative cancellation of the bottom-up oracle's in-flight
  /// (or next) solve pass — the `TabledEngine::Cancel` counterpart.
  /// Thread-safe; latches until `ResetCancel`. The top-down search itself
  /// is bounded by `max_work` and is not interrupted mid-tree; the oracle
  /// solve (where unbounded cost lives) stops at its next checkpoint with
  /// the fully-old-or-fully-new abort invariant, and the next query
  /// resumes the remainder. Cancels the caller's
  /// `EngineOptions::solver.cancel` token when one was supplied, otherwise
  /// an engine-owned token attached at oracle build time.
  void Cancel() { ActiveCancelToken()->Cancel(); }

  /// Clears a previous `Cancel` so the next oracle pass runs to completion.
  void ResetCancel() { ActiveCancelToken()->Reset(); }

  /// Deadline / step-budget for subsequent oracle solve passes (0 = none);
  /// see `SolverOptions::deadline_ns` / `step_budget`. Effective for an
  /// already-built oracle as well as a future one.
  void SetDeadlineNs(uint64_t deadline_ns);
  void SetStepBudget(uint64_t step_budget);

  /// The persistent bottom-up oracle instance, if one has been built
  /// (null before the first query or when the oracle does not apply).
  const IncrementalSolver* oracle_solver() const;

  /// The session the oracle lives behind (null before the first build) —
  /// the facade every oracle read/delta now routes through.
  const Session* session() const { return oracle_session_.get(); }

  /// Telemetry dump of the bottom-up oracle's solver (see
  /// `IncrementalSolver::DumpTelemetry`); notes the absence when no oracle
  /// has been built yet.
  void DumpTelemetry(std::ostream& os) const;

  const EngineOptions& options() const { return opts_; }

 private:
  struct SubgoalOutcome {
    GoalStatus status = GoalStatus::kUnknown;
    Ordinal level;
    bool level_exact = false;
    bool floundered_somewhere = false;
  };
  struct MemoEntry {
    bool in_progress = false;
    bool done = false;
    SubgoalOutcome outcome;
  };
  using Taint = std::unordered_set<const Term*>;

  struct TreeOutcome {
    bool any_success = false;
    bool any_floundered = false;
    bool any_indeterminate = false;
    bool any_unknown = false;
    // Levels of failed negation-node children (for the fail level) and the
    // minimum successful-leaf level (for the success level).
    Ordinal fail_lub;
    Ordinal min_success;
    bool has_min_success = false;
    bool level_exact = true;
    /// Memo-simplification deleted a successful literal whose own
    /// derivation had negation-node children (success level > 1). Its
    /// leaves' negative literals are not represented in this tree, so a
    /// *failure* level computed here may overestimate the true level.
    bool fail_level_approximate = false;
    std::vector<Answer> answers;
  };

  /// Evaluates the subsidiary tree for ground atom `q` behind a negation
  /// node (memoized; detects negative loops via `in_progress`).
  SubgoalOutcome EvalGroundSubgoal(const Term* q, size_t neg_depth,
                                   Taint* taint);

  /// Depth-first expansion of the SLP tree for `goal`. `carry_lub` /
  /// `carry_exact` accumulate the negation-node level contributions of
  /// positive literals that memo-simplification deleted along this branch.
  void Expand(const Goal& goal, const Substitution& theta, size_t depth,
              size_t neg_depth, std::vector<uint64_t>* path_keys,
              const Goal& root_goal, bool collect_answers,
              const Ordinal& carry_lub, bool carry_exact, Taint* taint,
              TreeOutcome* out);

  /// Handles an active leaf (only negative literals).
  void HandleActiveLeaf(const Goal& leaf, const Substitution& theta,
                        size_t neg_depth, const Goal& root_goal,
                        bool collect_answers, const Ordinal& carry_lub,
                        bool carry_exact, Taint* taint, TreeOutcome* out);

  /// Aggregates a finished TreeOutcome into a SubgoalOutcome status.
  static SubgoalOutcome Aggregate(const TreeOutcome& t);

  /// Selection per the configured computation rule. Returns the index of
  /// the selected literal or SIZE_MAX when the goal is an active leaf
  /// (no literal may be selected before the negative-leaf stage).
  size_t SelectLiteral(const Goal& goal) const;

  /// Canonical key of a ground goal for repeated-goal pruning; 0 when the
  /// goal is nonground (pruning disabled for it).
  static uint64_t GroundGoalKey(const Goal& goal);

  /// True when the bottom-up oracle applies to this engine's options and
  /// program (preferential rule, memoing, function-free clauses). The
  /// clause scan is cached by clause count.
  bool OracleApplies();

  /// Builds (or, after the clause base grew, rebuilds) the persistent
  /// oracle without touching the memo; rule deltas recorded in
  /// `oracle_rule_log_` are replayed onto a rebuilt oracle, so they
  /// survive `Program::AddClause`. No-op when the oracle does not apply
  /// or grounding exceeds its budget.
  void EnsureOracleBuilt();

  /// Applies one logged rule delta to the oracle. Returns whether the
  /// oracle's program changed.
  bool ApplyOracleRuleDelta(bool is_assert, const Clause& rule,
                            RuleId* id_out = nullptr);

  /// Records a rule delta in the replay log, replacing any earlier entry
  /// for the same rule content (the last delta per rule is its net
  /// state, and deltas of distinct rules commute) — the log stays
  /// bounded by the number of *distinct* rules ever toggled, not the
  /// delta count.
  void LogOracleRuleDelta(bool is_assert, const Clause& rule);

  /// Seeds the memo from the bottom-up well-founded model on the first
  /// query, when `bottom_up_oracle` applies (see EngineOptions). No-op on
  /// programs with function symbols or under counterexample rules.
  void MaybeSeedOracle();

  const Program& program_;
  TermStore& store_;
  EngineOptions opts_;
  /// Bottom-up oracle state, built once per engine and reused across
  /// queries and `ClearMemo` (`MaybeSeedOracle` re-solves nothing when the
  /// ground program is unchanged; `IncrementalSolver::Model` is cached).
  /// Rebuilt when the program's clause count moved since the build — the
  /// mutate-then-`ClearMemo` pattern must not answer from a stale model.
  /// The oracle lives behind a direct-mode `Session` (serve/session.h):
  /// every delta and point query routes through the unified facade.
  std::unique_ptr<Session> oracle_session_;
  /// The session's solver (diagnostics/seed path). Null iff no session.
  IncrementalSolver* OracleSolver() const;
  size_t oracle_clause_count_ = 0;
  /// Net ground rule deltas applied through `AssertRule`/`RetractRule`
  /// (one entry per distinct rule content, last delta wins). Clauses hold
  /// hash-consed terms of `store_`, so the log stays valid across oracle
  /// rebuilds and is replayed onto each new oracle. `key` is the content
  /// signature: head, sorted positive atoms, a null separator, sorted
  /// negative atoms.
  struct OracleDelta {
    bool is_assert = true;
    Clause rule;
    std::vector<const Term*> key;
  };
  struct OracleDeltaKeyHash {
    size_t operator()(const std::vector<const Term*>& key) const {
      size_t h = key.size();
      for (const Term* t : key) {
        h ^= std::hash<const Term*>()(t) + 0x9e3779b97f4a7c15ULL +
             (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  std::vector<OracleDelta> oracle_rule_log_;
  /// Content signature -> index in `oracle_rule_log_`: last-delta-wins
  /// replacement is O(1), so an N-delta stream maintains the log in O(N)
  /// (entries of distinct rules commute, so in-place overwrite preserves
  /// replay semantics).
  std::unordered_map<std::vector<const Term*>, size_t, OracleDeltaKeyHash>
      oracle_rule_index_;
  /// The token `Cancel` trips: the caller's when supplied, else the
  /// engine-owned one (which `EnsureOracleBuilt` attaches to the oracle).
  CancelToken* ActiveCancelToken() {
    return opts_.solver.cancel != nullptr ? opts_.solver.cancel
                                          : &cancel_token_;
  }
  CancelToken cancel_token_;

  /// `OracleApplies` clause-scan cache (keyed by clause count).
  size_t applies_checked_count_ = static_cast<size_t>(-1);
  bool applies_cache_ = false;
  std::unordered_map<const Term*, MemoEntry> memo_;
  size_t work_ = 0;
  size_t negation_nodes_ = 0;
  bool work_exhausted_ = false;
  bool oracle_attempted_ = false;
};

}  // namespace gsls

#endif  // GSLS_CORE_ENGINE_H_
