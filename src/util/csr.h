#ifndef GSLS_UTIL_CSR_H_
#define GSLS_UTIL_CSR_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace gsls {

/// Compressed sparse rows: a partition of one contiguous payload array into
/// `rows()` spans, addressed by an offsets array. The cache-flat replacement
/// for `vector<vector<T>>` on every hot index of the solver (rule-head and
/// occurrence lists): a row scan walks linear memory and construction is
/// two passes with zero per-row reallocation.
///
/// Build protocol (counting sort over rows):
///
///   csr.Reset(rows);
///   for (item : items) csr.CountAt(row_of(item));   // pass 1: degrees
///   csr.FinishCounting();                           // prefix sum + alloc
///   for (item : items) csr.Fill(row_of(item), item); // pass 2: place
///   csr.FinishFilling();                            // restore offsets
///
/// `Fill` must place exactly the counted number of items per row (asserted
/// in `FinishFilling`); items of one row land in `Fill` call order.
template <typename T>
class Csr {
 public:
  Csr() = default;

  /// Starts a new build over `rows` empty rows.
  void Reset(size_t rows) {
    offsets_.assign(rows + 1, 0);
    payload_.clear();
  }

  /// Pass 1: one future payload item in `row`.
  void CountAt(uint32_t row) { ++offsets_[row + 1]; }

  /// Pass 1: `n` future payload items in `row`.
  void AddCount(uint32_t row, uint32_t n) { offsets_[row + 1] += n; }

  /// Exclusive prefix sum over the counts; sizes the payload.
  void FinishCounting() {
    for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
    payload_.resize(offsets_.back());
  }

  /// Pass 2: appends `value` to `row` (uses the offsets as cursors).
  void Fill(uint32_t row, T value) { payload_[offsets_[row]++] = value; }

  /// Shifts the cursor-advanced offsets back into place. After this the
  /// structure is read-only until the next `Reset`.
  void FinishFilling() {
    assert(offsets_.size() < 2 ||
           offsets_[offsets_.size() - 2] == payload_.size());
    for (size_t i = offsets_.size() - 1; i > 0; --i) {
      offsets_[i] = offsets_[i - 1];
    }
    offsets_[0] = 0;
  }

  /// Appends `n` empty rows to a finished structure (used when trailing
  /// rows gain ids but no payload yet — e.g. isolated components appended
  /// to a scheduling DAG).
  void AppendEmptyRows(size_t n) {
    if (offsets_.empty()) offsets_.push_back(0);
    offsets_.insert(offsets_.end(), n, offsets_.back());
  }

  size_t rows() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t size() const { return payload_.size(); }

  std::span<const T> Row(uint32_t row) const {
    return std::span<const T>(payload_.data() + offsets_[row],
                              offsets_[row + 1] - offsets_[row]);
  }

 private:
  std::vector<uint32_t> offsets_;  ///< rows()+1 entries; offsets_[0] == 0
  std::vector<T> payload_;
};

}  // namespace gsls

#endif  // GSLS_UTIL_CSR_H_
