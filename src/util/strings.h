#ifndef GSLS_UTIL_STRINGS_H_
#define GSLS_UTIL_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace gsls {

namespace internal {
inline void StrAppendImpl(std::ostringstream&) {}
template <typename T, typename... Rest>
void StrAppendImpl(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  StrAppendImpl(os, rest...);
}
}  // namespace internal

/// Concatenates the streamable arguments into a string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrAppendImpl(os, args...);
  return os.str();
}

/// Joins the elements of `parts` with `sep`. Elements must be streamable.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    first = false;
    os << p;
  }
  return os.str();
}

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char delim);

/// Whether `s` starts with `prefix`.
inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace gsls

#endif  // GSLS_UTIL_STRINGS_H_
