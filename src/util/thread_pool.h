#ifndef GSLS_UTIL_THREAD_POOL_H_
#define GSLS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace gsls {

/// Work-stealing pool over `uint32_t` task ids (the solver's component
/// ids; keeping the task type this narrow keeps queue traffic allocation-
/// free). One deque per worker: an owner pushes and pops at the back
/// (LIFO, for locality along DAG chains), thieves take from the front
/// (FIFO, stealing the oldest—widest—work).
///
/// `Run` executes one job to completion: the seeds plus everything `Push`
/// releases transitively from inside `body`. The *calling thread
/// participates as worker 0*, so a pool of `num_threads` spawns only
/// `num_threads - 1` OS threads and a 1-thread pool degenerates to a plain
/// loop on the caller — no handoff latency on tiny jobs, which is what the
/// incremental solver's per-delta cones look like. Spawned workers persist
/// across `Run` calls (they sleep between jobs), so a delta stream pays
/// thread creation once.
///
/// Memory ordering: queue transfers synchronize via the per-queue mutexes;
/// callers that release a task only after some shared state is complete
/// (the scheduler's indegree counters) must order that with their own
/// acquire/release — the pool does not know about task dependencies.
class WorkStealingPool {
 public:
  /// `num_threads >= 1`: total workers, including the caller of `Run`.
  explicit WorkStealingPool(unsigned num_threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  unsigned size() const { return num_workers_; }

  /// Runs `body(worker, task)` for every seed and every task `Push`ed
  /// during the job, returning when all of them have completed. Only one
  /// `Run` may be active at a time. `body` must not throw.
  void Run(std::span<const uint32_t> seeds,
           const std::function<void(unsigned, uint32_t)>& body);

  /// Releases a task into `worker`'s own deque. Only valid from inside
  /// `body`, with `worker` the id `body` was invoked with.
  void Push(unsigned worker, uint32_t task);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<uint32_t> tasks;
  };

  void WorkerLoop(unsigned worker);
  /// Processes tasks until the current job has no incomplete task left.
  void DrainJob(unsigned worker);
  /// Own-queue pop (back) or steal (front of a victim); false when every
  /// queue came up empty.
  bool TryPop(unsigned worker, uint32_t* task);

  unsigned num_workers_;
  std::vector<Queue> queues_;
  std::vector<std::thread> threads_;

  std::mutex job_mu_;
  std::condition_variable job_cv_;   ///< workers wait here between jobs
  std::condition_variable done_cv_;  ///< Run waits here for completion
  std::atomic<const std::function<void(unsigned, uint32_t)>*> body_{nullptr};
  uint64_t job_epoch_ = 0;
  /// Tasks released but not yet completed in the current job; the job is
  /// done when this hits zero after at least one task ran.
  std::atomic<uint64_t> inflight_{0};
  bool stopping_ = false;
};

}  // namespace gsls

#endif  // GSLS_UTIL_THREAD_POOL_H_
