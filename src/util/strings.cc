#include "util/strings.h"

namespace gsls {

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

}  // namespace gsls
