#include "util/thread_pool.h"

#include <chrono>

#include "obs/trace.h"
#include "util/strings.h"

namespace gsls {

WorkStealingPool::WorkStealingPool(unsigned num_threads)
    : num_workers_(num_threads == 0 ? 1 : num_threads),
      queues_(num_workers_) {
  threads_.reserve(num_workers_ - 1);
  for (unsigned w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lk(job_mu_);
    stopping_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkStealingPool::Push(unsigned worker, uint32_t task) {
  // The increment precedes the pusher's own completion decrement (Push
  // only happens inside `body`), so `inflight_` can never dip to zero
  // while released work is still in flight.
  inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(queues_[worker].mu);
    queues_[worker].tasks.push_back(task);
  }
  job_cv_.notify_one();
}

bool WorkStealingPool::TryPop(unsigned worker, uint32_t* task) {
  {
    Queue& own = queues_[worker];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.tasks.empty()) {
      *task = own.tasks.back();  // LIFO: stay on the chain just extended
      own.tasks.pop_back();
      return true;
    }
  }
  for (unsigned i = 1; i < num_workers_; ++i) {
    Queue& victim = queues_[(worker + i) % num_workers_];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.tasks.empty()) {
      *task = victim.tasks.front();  // FIFO: steal the oldest, widest work
      victim.tasks.pop_front();
      GSLS_TRACE_INSTANT("pool.steal", (worker + i) % num_workers_);
      return true;
    }
  }
  return false;
}

void WorkStealingPool::DrainJob(unsigned worker) {
  unsigned idle_spins = 0;
  // DAG release stalls surface as "pool.idle" spans: opened on the first
  // failed pop, closed when work arrives or the job drains. Manual (not
  // RAII) because the gap spans loop iterations.
  [[maybe_unused]] uint64_t idle_start = 0;
#ifndef GSLS_OBS_NO_TRACE
  auto close_idle = [&] {
    if (idle_start != 0) {
      obs::TraceRecorder::Global().RecordSpan(
          "pool.idle", worker, idle_start, obs::NowNs() - idle_start);
      idle_start = 0;
    }
  };
#else
  auto close_idle = [] {};
#endif
  while (true) {
    uint32_t task;
    if (TryPop(worker, &task)) {
      close_idle();
      idle_spins = 0;
      (*body_.load(std::memory_order_acquire))(worker, task);
      if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task of the job: wake the Run caller (and any sleeping
        // workers, so they fall out of their drain loops).
        { std::lock_guard<std::mutex> lk(job_mu_); }
        done_cv_.notify_all();
        job_cv_.notify_all();
        return;
      }
      continue;
    }
    if (inflight_.load(std::memory_order_acquire) == 0) {
      close_idle();
      return;
    }
#ifndef GSLS_OBS_NO_TRACE
    if (idle_start == 0 && obs::TraceRecorder::Global().enabled()) {
      idle_start = obs::NowNs();
    }
#endif
    // Empty queues but unfinished tasks: another worker will release
    // successors shortly. Yield first; back off to a micro-sleep if the
    // running task is long (e.g. one dominant SCC).
    if (++idle_spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void WorkStealingPool::WorkerLoop(unsigned worker) {
  uint64_t seen_epoch = 0;
  [[maybe_unused]] bool named = false;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(job_mu_);
      job_cv_.wait(lk, [&] { return stopping_ || job_epoch_ > seen_epoch; });
      if (stopping_) return;
      seen_epoch = job_epoch_;
    }
#ifndef GSLS_OBS_NO_TRACE
    // Name this worker's timeline row on its first traced job. Deferred
    // until tracing is on so an untraced run never registers (and never
    // allocates) a ring.
    if (!named && obs::TraceRecorder::Global().enabled()) {
      obs::TraceRecorder::Global().SetCurrentThreadName(
          StrCat("worker-", worker));
      named = true;
    }
#endif
    DrainJob(worker);
  }
}

void WorkStealingPool::Run(std::span<const uint32_t> seeds,
    const std::function<void(unsigned, uint32_t)>& body) {
  if (seeds.empty()) return;
  inflight_.store(seeds.size(), std::memory_order_relaxed);
  body_.store(&body, std::memory_order_release);
  // Round-robin the seeds so workers start spread across the DAG's width.
  for (size_t i = 0; i < seeds.size(); ++i) {
    std::lock_guard<std::mutex> lk(queues_[i % num_workers_].mu);
    queues_[i % num_workers_].tasks.push_back(seeds[i]);
  }
  {
    std::lock_guard<std::mutex> lk(job_mu_);
    ++job_epoch_;
  }
  job_cv_.notify_all();
  DrainJob(0);
  std::unique_lock<std::mutex> lk(job_mu_);
  done_cv_.wait(lk, [&] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace gsls
