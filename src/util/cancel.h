#ifndef GSLS_UTIL_CANCEL_H_
#define GSLS_UTIL_CANCEL_H_

#include <atomic>
#include <cstdint>

namespace gsls {

/// How a solve pass ended. Every solve entry point (`SolveWfs`,
/// `IncrementalSolver::Model`/`QueryAtom`, the parallel scheduler) reports
/// one of these; anything other than `kCompleted` means the pass stopped
/// at a checkpoint and the results are partial — components already
/// finalized are exact (anytime semantics), un-finalized components keep
/// their previous values and are queued for the next pass (the
/// crash-consistent abort protocol of solver/incremental.h).
enum class SolveOutcome : uint8_t {
  kCompleted = 0,
  kCancelled = 1,          ///< a `CancelToken` fired (or a fault injected)
  kDeadlineExceeded = 2,   ///< wall-clock deadline or step budget exhausted
};

const char* SolveOutcomeName(SolveOutcome o);

/// Thread-safe cooperative cancellation flag, shared between the thread
/// driving a solve and any thread that wants to stop it. `Cancel` may be
/// called at any time from any thread; the solve observes it at its next
/// checkpoint (component boundary or every-N-iterations inside the long
/// loops). Relaxed atomics throughout: cancellation needs no ordering with
/// solver state — the abort path re-establishes its invariants itself.
///
/// A token outlives the pass it cancels: it stays cancelled until `Reset`,
/// so every later solve entry aborts immediately too. That is what makes
/// abort recovery testable — resume is an explicit `Reset` + re-solve, not
/// an accidental retry.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Monotonic steady-clock timestamp in nanoseconds — the time base of
/// `SolverOptions::deadline_ns` (absolute, so one deadline spans several
/// passes without re-arithmetic at every entry point).
uint64_t SteadyNowNs();

/// `SteadyNowNs() + relative_ns`, the usual way callers build a deadline.
inline uint64_t DeadlineAfterNs(uint64_t relative_ns) {
  return SteadyNowNs() + relative_ns;
}

/// Deterministic fault injection over the solver's cancellation
/// checkpoints: every checkpoint increments a global counter, and when the
/// injector is armed to trip at checkpoint `k`, the k-th checkpoint
/// behaves exactly like an external `Cancel` at that instant. Driving `k`
/// over `1..N` (with `N` learned from an unarmed counting run) aborts a
/// scenario at *every* checkpoint it has — the exhaustive abort-recovery
/// test in tests/fault_test.cc.
///
/// The total checkpoint count of a completed scenario is deterministic at
/// any thread count (checkpoints are per component and per fixed-stride
/// loop iteration, both schedule-independent), so the same `N` is
/// exhaustive for sequential and parallel runs alike. Counting is a
/// relaxed `fetch_add`; which worker hits the tripping checkpoint may vary
/// between threaded runs, but that any single checkpoint trips — and that
/// recovery from it is sound — is exactly what the test quantifies over.
class FaultInjector {
 public:
  /// Arms the injector to trip at checkpoint `trip_at` (1-based) and
  /// resets the counter. `trip_at == 0` counts without tripping — the
  /// learning run.
  void Arm(uint64_t trip_at) {
    trip_at_ = trip_at;
    counter_.store(0, std::memory_order_relaxed);
    tripped_.store(false, std::memory_order_relaxed);
  }

  /// Stops future trips without touching the counter (the resume phase of
  /// the fault test: the scenario continues past the already-tripped
  /// checkpoint).
  void Disarm() { trip_at_ = 0; }

  /// Counts one checkpoint; true iff this one is the armed trip point.
  bool OnCheckpoint() {
    uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (trip_at_ != 0 && n == trip_at_) {
      tripped_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  uint64_t checkpoints() const {
    return counter_.load(std::memory_order_relaxed);
  }
  bool tripped() const { return tripped_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> counter_{0};
  std::atomic<bool> tripped_{false};
  uint64_t trip_at_ = 0;  ///< 0 = count only; written only while idle
};

/// The per-solver checkpoint context: one object bundling the token, the
/// deadline, the step budget, and the fault injector, polled by every
/// checkpoint in the solve pipeline. A null `CancelCtx*` is the detached
/// fast path — call sites guard on the pointer, so a solver constructed
/// without any cancellation option pays nothing at all (the bench-gated
/// contract).
///
/// The outcome is *latched*: the first checkpoint that observes a stop
/// condition decides the pass outcome, and every later `Checkpoint` /
/// `aborted` call short-circuits on one relaxed load — cheap enough that
/// parallel workers poll it per component with no coordination. A new pass
/// calls `BeginPass` to re-arm (clearing the latch and the step counter);
/// a still-cancelled token simply re-latches at the first checkpoint, so
/// cancellation persists across passes until the token is `Reset`.
class CancelCtx {
 public:
  CancelCtx() = default;
  CancelCtx(CancelToken* token, uint64_t deadline_ns, uint64_t step_budget,
            FaultInjector* fault)
      : token_(token), fault_(fault), deadline_ns_(deadline_ns),
        step_budget_(step_budget) {}

  /// True iff any stop condition is configured — callers pass a null ctx
  /// downward otherwise, keeping the detached path free.
  bool active() const {
    return token_ != nullptr || fault_ != nullptr || deadline_ns_ != 0 ||
           step_budget_ != 0;
  }

  CancelToken* token() const { return token_; }
  void set_token(CancelToken* token) { token_ = token; }
  void set_deadline_ns(uint64_t ns) { deadline_ns_ = ns; }
  void set_step_budget(uint64_t n) { step_budget_ = n; }
  void set_fault(FaultInjector* fault) { fault_ = fault; }

  /// Re-arms for a new solve pass: clears the latched outcome and the
  /// step counter. Conditions that still hold (a cancelled token, an
  /// expired deadline) re-latch at the first checkpoint of the new pass.
  void BeginPass() {
    outcome_.store(static_cast<uint8_t>(SolveOutcome::kCompleted),
                   std::memory_order_relaxed);
    steps_.store(0, std::memory_order_relaxed);
  }

  /// One cancellation checkpoint: polls fault injection, the token, the
  /// step budget, and the deadline, in that order, latching the first
  /// outcome observed. Returns true iff the pass is (now) aborted. Called
  /// at every component boundary and every fixed stride inside the long
  /// loops; after the latch it degenerates to the single load of
  /// `aborted`.
  bool Checkpoint() {
    if (aborted()) return true;
    if (fault_ != nullptr && fault_->OnCheckpoint()) {
      // An injected fault is an external Cancel at this exact checkpoint:
      // it must persist across pass boundaries the same way, so it fires
      // through the token when one is attached.
      if (token_ != nullptr) token_->Cancel();
      Latch(SolveOutcome::kCancelled);
      return true;
    }
    if (token_ != nullptr && token_->IsCancelled()) {
      Latch(SolveOutcome::kCancelled);
      return true;
    }
    uint64_t steps = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (step_budget_ != 0 && steps > step_budget_) {
      Latch(SolveOutcome::kDeadlineExceeded);
      return true;
    }
    if (deadline_ns_ != 0 && SteadyNowNs() >= deadline_ns_) {
      Latch(SolveOutcome::kDeadlineExceeded);
      return true;
    }
    return false;
  }

  /// One relaxed load; true iff some checkpoint latched a stop outcome
  /// this pass.
  bool aborted() const {
    return outcome_.load(std::memory_order_relaxed) !=
           static_cast<uint8_t>(SolveOutcome::kCompleted);
  }

  SolveOutcome outcome() const {
    return static_cast<SolveOutcome>(
        outcome_.load(std::memory_order_relaxed));
  }

  /// Checkpoints consumed this pass (the step-budget counter) — the
  /// `cancel.checkpoints` telemetry source.
  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }

 private:
  void Latch(SolveOutcome o) {
    uint8_t expected = static_cast<uint8_t>(SolveOutcome::kCompleted);
    // First latch wins; concurrent workers hitting different conditions
    // in the same instant keep one coherent outcome.
    outcome_.compare_exchange_strong(expected, static_cast<uint8_t>(o),
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed);
  }

  CancelToken* token_ = nullptr;
  FaultInjector* fault_ = nullptr;
  uint64_t deadline_ns_ = 0;  ///< absolute `SteadyNowNs`; 0 = none
  uint64_t step_budget_ = 0;  ///< max checkpoints per pass; 0 = unlimited
  std::atomic<uint64_t> steps_{0};
  std::atomic<uint8_t> outcome_{
      static_cast<uint8_t>(SolveOutcome::kCompleted)};
};

/// The in-loop checkpoint stride: long solver loops (lfp propagation,
/// unfounded floods, recondensation windows) poll the ctx every this many
/// iterations, bounding abort latency to one stride of constant-cost steps
/// while keeping the common case at one predictable-branch decrement.
inline constexpr uint32_t kCancelStride = 256;

/// Strided checkpoint helper for the inner loops: counts down locally and
/// runs a full `Checkpoint` every `kCancelStride` calls. Null ctx is the
/// free detached path. Returns true iff the pass is aborted.
class StridedCheckpoint {
 public:
  explicit StridedCheckpoint(CancelCtx* ctx) : ctx_(ctx) {}

  bool Tick() {
    if (ctx_ == nullptr || --countdown_ != 0) return false;
    countdown_ = kCancelStride;
    return ctx_->Checkpoint();
  }

 private:
  CancelCtx* ctx_;
  uint32_t countdown_ = kCancelStride;
};

}  // namespace gsls

#endif  // GSLS_UTIL_CANCEL_H_
