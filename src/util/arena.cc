#include "util/arena.h"

#include <cstdlib>

namespace gsls {

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  uintptr_t p = reinterpret_cast<uintptr_t>(cursor_);
  uintptr_t aligned = (p + align - 1) & ~(align - 1);
  size_t padding = aligned - p;
  if (cursor_ == nullptr ||
      aligned + bytes > reinterpret_cast<uintptr_t>(limit_)) {
    cursor_ = AllocateNewBlock(bytes + align);
    p = reinterpret_cast<uintptr_t>(cursor_);
    aligned = (p + align - 1) & ~(align - 1);
    padding = aligned - p;
  }
  cursor_ = reinterpret_cast<char*>(aligned + bytes);
  bytes_allocated_ += bytes + padding;
  return reinterpret_cast<void*>(aligned);
}

char* Arena::AllocateNewBlock(size_t min_bytes) {
  size_t size = block_bytes_;
  if (min_bytes > size) size = min_bytes;
  blocks_.push_back(std::make_unique<char[]>(size));
  bytes_reserved_ += size;
  limit_ = blocks_.back().get() + size;
  return blocks_.back().get();
}

}  // namespace gsls
