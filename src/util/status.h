#ifndef GSLS_UTIL_STATUS_H_
#define GSLS_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gsls {

/// Error categories used across the library. Modeled on the RocksDB/Abseil
/// convention of returning a `Status` rather than throwing exceptions across
/// public API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (e.g. parse errors).
  kNotFound,          ///< A requested entity does not exist.
  kFailedPrecondition,///< The operation requires state the caller lacks.
  kResourceExhausted, ///< A budget (nodes, depth, memory) was exceeded.
  kUnimplemented,     ///< The feature is intentionally not supported.
  kInternal,          ///< Invariant violation inside the library.
};

/// Stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. All fallible public operations in
/// the library return `Status` or `Result<T>`; exceptions are never thrown
/// across the public API.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type `T` or an error `Status`. Minimal analogue of
/// `absl::StatusOr<T>`.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  /// Implicit from non-OK status (error). Constructing from an OK status is
  /// an internal error.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gsls

#endif  // GSLS_UTIL_STATUS_H_
