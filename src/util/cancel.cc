#include "util/cancel.h"

#include <chrono>

namespace gsls {

const char* SolveOutcomeName(SolveOutcome o) {
  switch (o) {
    case SolveOutcome::kCompleted: return "completed";
    case SolveOutcome::kCancelled: return "cancelled";
    case SolveOutcome::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace gsls
