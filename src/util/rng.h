#ifndef GSLS_UTIL_RNG_H_
#define GSLS_UTIL_RNG_H_

#include <cstdint>

namespace gsls {

/// Deterministic 64-bit RNG (SplitMix64). Used by randomized tests and the
/// workload generators so every run is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    return lo + static_cast<int>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability `num/den`.
  bool Chance(uint64_t num, uint64_t den) { return Uniform(den) < num; }

  /// Uniform double in [0,1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace gsls

#endif  // GSLS_UTIL_RNG_H_
