#ifndef GSLS_UTIL_ARENA_H_
#define GSLS_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace gsls {

/// A bump-pointer arena allocator.
///
/// Terms in this library are immutable, densely shared, and live exactly as
/// long as the `TermStore` that created them, so they are managed manually
/// through an arena rather than with per-node reference counting. Allocation
/// is a pointer bump; deallocation happens all at once when the arena is
/// destroyed. Objects allocated here must be trivially destructible (their
/// destructors are never run).
class Arena {
 public:
  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` with the given alignment. Never returns null
  /// (allocation failure aborts, as in most database engines' arena paths).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Allocates and default-constructs an array of `n` objects of type `T`.
  /// `T` must be trivially destructible.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Constructs a `T` in the arena. `T` must be trivially destructible.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    return new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Total bytes handed out to callers (excludes block slack).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total bytes reserved from the system.
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t block_count() const { return blocks_.size(); }

 private:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  char* AllocateNewBlock(size_t min_bytes);

  size_t block_bytes_;
  char* cursor_ = nullptr;
  char* limit_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace gsls

#endif  // GSLS_UTIL_ARENA_H_
