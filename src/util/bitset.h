#ifndef GSLS_UTIL_BITSET_H_
#define GSLS_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gsls {

/// A dynamically sized bitset with the few operations the fixpoint engines
/// need. Indices beyond `size()` read as false; `Set` requires in-range.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t size) : size_(size), words_((size + 63) / 64) {}

  size_t size() const { return size_; }

  void Resize(size_t size) {
    size_ = size;
    words_.resize((size + 63) / 64, 0);
  }

  bool Test(size_t i) const {
    if (i >= size_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  void Clear() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// True iff no bit is set.
  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  bool operator==(const DenseBitset& other) const {
    if (size_ != other.size_) return false;
    return words_ == other.words_;
  }

  /// Sets every bit of `other` in this (sizes must match).
  void UnionWith(const DenseBitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// True iff every set bit of this is set in `other`.
  bool IsSubsetOf(const DenseBitset& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    }
    return true;
  }

  /// True iff this and `other` share a set bit.
  bool Intersects(const DenseBitset& other) const {
    size_t n = std::min(words_.size(), other.words_.size());
    for (size_t i = 0; i < n; ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace gsls

#endif  // GSLS_UTIL_BITSET_H_
