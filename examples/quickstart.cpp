// Quickstart: parse a normal logic program, evaluate queries under the
// well-founded semantics with both engines, and inspect three-valued
// results.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "core/tabled.h"
#include "lang/parser.h"

using namespace gsls;

int main() {
  TermStore store;

  // A little deductive database: employees, managers, and a default rule
  // "X gets a bonus unless X is flagged" — plus a deliberately paradoxical
  // committee rule to show the third truth value.
  Program program = MustParseProgram(store, R"(
      employee(ann). employee(bob). employee(cyd).
      manages(ann, bob). manages(bob, cyd).

      boss(X, Y) :- manages(X, Y).
      boss(X, Y) :- manages(X, Z), boss(Z, Y).

      flagged(bob).
      bonus(X) :- employee(X), not flagged(X).

      % "cyd chairs the committee iff she does not chair it" - undefined.
      chairs(cyd) :- not chairs(cyd).
  )");

  std::printf("Program:\n%s\n", program.ToString().c_str());

  // --- Engine 1: the effective memoing engine (function-free programs). --
  Result<TabledEngine> tabled = TabledEngine::Create(program);
  if (!tabled.ok()) {
    std::printf("tabling failed: %s\n", tabled.status().ToString().c_str());
    return 1;
  }

  Goal q1 = MustParseQuery(store, "boss(ann, X)");
  QueryResult r1 = tabled->Solve(q1);
  std::printf("?- boss(ann, X).        %s\n", GoalStatusName(r1.status));
  for (const Answer& a : r1.answers) {
    std::printf("   X = %s   (level %s)\n",
                store.ToString(a.theta.Apply(store, q1[0].atom->arg(1)))
                    .c_str(),
                a.level.ToString().c_str());
  }

  Goal q2 = MustParseQuery(store, "bonus(X)");
  QueryResult r2 = tabled->Solve(q2);
  std::printf("?- bonus(X).            %s\n", GoalStatusName(r2.status));
  for (const Answer& a : r2.answers) {
    std::printf("   X = %s\n",
                store.ToString(a.theta.Apply(store, q2[0].atom->arg(0)))
                    .c_str());
  }

  // Three-valued ground queries.
  for (const char* atom_src :
       {"bonus(ann)", "bonus(bob)", "chairs(cyd)", "boss(cyd, ann)"}) {
    const Term* atom = MustParseTerm(store, atom_src);
    std::printf("?- %-18s  %s\n", atom_src,
                GoalStatusName(tabled->StatusOf(atom)));
  }

  // --- Engine 2: the faithful top-down search engine. ------------------
  GlobalSlsEngine search(program);
  QueryResult r3 = search.Solve(MustParseQuery(store, "bonus(X)"));
  std::printf(
      "\nGlobal SLS search agrees: ?- bonus(X) is %s with %zu answer(s), "
      "%zu resolution steps, %zu negation nodes.\n",
      GoalStatusName(r3.status), r3.answers.size(), r3.work,
      r3.negation_nodes);

  const Term* chairs = MustParseTerm(store, "chairs(cyd)");
  std::printf(
      "The committee paradox is %s: recursion through negation leaves the "
      "atom undefined in the well-founded model.\n",
      GoalStatusName(search.StatusOf(chairs)));
  return 0;
}
