// Game analysis under the well-founded semantics: the classic
//   win(X) :- move(X, Y), not win(Y).
// Three-valued reading: a position is WON when some move reaches a lost
// position, LOST when every move reaches a won position (or no move
// exists), and DRAWN (undefined) when optimal play cycles forever. The
// drawn positions are exactly what two-valued semantics cannot express and
// what the well-founded semantics gets right.

#include <cstdio>
#include <string>
#include <vector>

#include "core/tabled.h"
#include "lang/parser.h"
#include "util/strings.h"

using namespace gsls;

int main() {
  TermStore store;
  // A board with a winning ladder (a->b->c), a draw cycle (d<->e with an
  // escape to the ladder), and an isolated mutual cycle (f<->g).
  Program program = MustParseProgram(store, R"(
      win(X) :- move(X, Y), not win(Y).

      % ladder: c is terminal (lost), b beats c, a must hand b the win
      move(a, b). move(b, c).
      % cycle with an escape: e can move into the ladder at c
      move(d, e). move(e, d). move(e, c).
      % pure cycle: perpetual check
      move(f, g). move(g, f).
  )");
  std::printf("Game program:\n%s\n", program.ToString().c_str());

  Result<TabledEngine> engine = TabledEngine::Create(program);
  if (!engine.ok()) {
    std::printf("error: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s %-14s %-18s\n", "position", "verdict", "level (stage)");
  for (const char* pos : {"a", "b", "c", "d", "e", "f", "g"}) {
    const Term* atom = MustParseTerm(store, StrCat("win(", pos, ")"));
    const char* verdict = "";
    switch (engine->ValueOf(atom)) {
      case TruthValue::kTrue: verdict = "WON"; break;
      case TruthValue::kFalse: verdict = "LOST"; break;
      case TruthValue::kUndefined: verdict = "DRAWN"; break;
    }
    auto level = engine->LevelOf(atom);
    std::printf("%-10s %-14s %-18s\n", pos, verdict,
                level.has_value() ? level->ToString().c_str() : "-");
  }

  // Which opening positions are winning? A single nonground query.
  Goal query = MustParseQuery(store, "win(X)");
  QueryResult r = engine->Solve(query);
  std::printf("\n?- win(X).  %s;", GoalStatusName(r.status));
  std::printf(" winning positions:");
  for (const Answer& a : r.answers) {
    std::printf(" %s",
                store.ToString(a.theta.Apply(store, query[0].atom->arg(0)))
                    .c_str());
  }
  std::printf("\n");

  std::printf(
      "\nReading the table: e is WON (it can escape into the ladder and\n"
      "hand c, a lost position, to the opponent); d is LOST because its\n"
      "only move gifts e the win; f and g are DRAWN - with optimal play\n"
      "the f<->g game never ends, which the well-founded model represents\n"
      "as 'undefined' rather than forcing an arbitrary verdict.\n");
  return 0;
}
