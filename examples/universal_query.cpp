// Example 6.1: the universal query problem, and how the augmented program
// P' (Def. 6.1) solves it. With P = {p(a)}, every Herbrand model of P
// satisfies "forall x. p(x)" — yet it is not a logical consequence of P,
// and no resolution procedure returns the identity answer for ?- p(X).
// Adding an unrelated fact (q(b)) breaks the universal truth; augmenting P
// with a fact over fresh symbols makes the Herbrand universe rich enough
// that most-general answers mean what they say (Thm. 6.2(3)).
//
// The example also shows the term/1 guard of Sec. 6 removing floundering.

#include <cstdio>

#include "core/engine.h"
#include "lang/parser.h"
#include "lang/transforms.h"

using namespace gsls;

namespace {

void ShowAnswers(TermStore& store, const char* label, const Goal& query,
                 const QueryResult& r) {
  std::printf("%-34s %s;", label, GoalStatusName(r.status));
  for (const Answer& a : r.answers) {
    std::printf(" %s",
                store.ToString(a.theta.Apply(store, query[0].atom)).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Example 6.1: universal query problem ===\n");
  {
    TermStore store;
    Program p = MustParseProgram(store, "p(a).");
    GlobalSlsEngine engine(p);
    Goal query = MustParseQuery(store, "p(X)");
    QueryResult r = engine.Solve(query);
    ShowAnswers(store, "P = {p(a)}:        ?- p(X)", query, r);
    std::printf(
        "  The only answer is X = a: 'forall x p(x)' holds in the single\n"
        "  Herbrand model, but resolution (rightly) cannot certify it.\n");
  }
  {
    TermStore store;
    Program p = MustParseProgram(store, "p(a). q(b).");
    GlobalSlsEngine engine(p);
    Goal query = MustParseQuery(store, "p(X)");
    QueryResult r = engine.Solve(query);
    ShowAnswers(store, "P + {q(b)}:        ?- p(X)", query, r);
    std::printf(
        "  The unrelated fact q(b) adds b to the universe, and p(b) is\n"
        "  false: universal truth in Herbrand models was an artifact.\n");
  }
  {
    TermStore store;
    Program p = MustParseProgram(store, "p(a).");
    Program aug = AugmentProgram(p);
    std::printf("\nAugmented program P' (Def. 6.1):\n%s",
                aug.ToString().c_str());
    GlobalSlsEngine engine(aug);
    Goal query = MustParseQuery(store, "p(X)");
    QueryResult r = engine.Solve(query);
    ShowAnswers(store, "P' = P + {$aug($f($c))}: ?- p(X)", query, r);
    std::printf(
        "  P' has infinitely many ground terms absent from P, so an answer\n"
        "  substitution is most general exactly when it deserves to be:\n"
        "  ?- p(X) still answers only X = a, certifying that P does NOT\n"
        "  entail forall x p(x) (Thm. 6.2(3) reads answers over P').\n");
  }

  std::printf("\n=== Sec. 6: the term/1 guard removes floundering ===\n");
  {
    TermStore store;
    Program p = MustParseProgram(store, "p(X) :- not q(f(X)). q(a).");
    GlobalSlsEngine engine(p);
    Goal query = MustParseQuery(store, "p(X)");
    QueryResult r = engine.Solve(query);
    ShowAnswers(store, "unguarded:         ?- p(X)", query, r);

    Program guarded = AddTermGuard(p);
    std::printf("guarded program:\n%s", guarded.ToString().c_str());
    // The guarded query has infinitely many answers (every ground term
    // works); cap the enumeration.
    EngineOptions gopts;
    gopts.max_answers = 6;
    gopts.max_slp_depth = 64;
    GlobalSlsEngine guarded_engine(guarded, gopts);
    Goal gquery = GuardGoal(guarded, store, MustParseQuery(store, "p(X)"));
    QueryResult gr = guarded_engine.Solve(gquery);
    std::printf("guarded:           ?- p(X), term(X)   %s; first answers:",
                GoalStatusName(gr.status));
    size_t shown = 0;
    for (const Answer& a : gr.answers) {
      if (shown++ == 4) break;
      std::printf(" %s",
                  store.ToString(a.theta.Apply(store, gquery[0].atom))
                      .c_str());
    }
    std::printf(
        "\n  term/1 enumerates the Herbrand universe, so every negative\n"
        "  subgoal is eventually ground: the guarded query cannot\n"
        "  flounder, at the price of enumerating instances.\n");
  }
  return 0;
}
