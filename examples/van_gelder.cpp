// Example 3.1 of the paper (due to Van Gelder): the transfinite-level
// program behind Figures 1-4. Prints the SLP-trees of Figures 1-3, the
// global tree of Figure 4 (truncated), the level table
// level(<- w(s^n(0))) = 2n, and the analytic limit level(<- w(0)) = w+2.

#include <cstdio>
#include <string>

#include "core/global_tree.h"
#include "core/slp_tree.h"
#include "lang/parser.h"
#include "util/strings.h"

using namespace gsls;

namespace {

std::string IntTerm(int i) {
  std::string t = "0";
  for (int k = 0; k < i; ++k) t = "s(" + t + ")";
  return t;
}

}  // namespace

int main() {
  TermStore store;
  Program program = MustParseProgram(store, R"(
      e(s(0), s(s(0))).
      e(s(X), s(s(Y))) :- e(X, s(Y)).
      e(s(0), 0).
      e(s(X), 0) :- e(X, 0).
      w(X) :- not u(X).
      u(X) :- e(Y, X), not w(Y).
  )");
  std::printf("Example 3.1 program (0 plays the ordinal w):\n%s\n",
              program.ToString().c_str());

  std::printf("=== Figure 1: SLP-trees T_{w(i)} ===\n");
  for (int i : {0, 1, 2}) {
    SlpTree tree = SlpTree::Build(
        program, MustParseQuery(store, StrCat("w(", IntTerm(i), ")")));
    std::printf("%s", tree.ToString(store).c_str());
  }

  std::printf("\n=== Figure 2: SLP-trees T_{u(i)}, i >= 2 ===\n");
  for (int i : {2, 3, 4}) {
    SlpTree tree = SlpTree::Build(
        program, MustParseQuery(store, StrCat("u(", IntTerm(i), ")")));
    std::printf("%s", tree.ToString(store).c_str());
  }

  std::printf(
      "\n=== Figure 3: SLP-tree T_{u(0)} (infinite; truncated at depth 8) "
      "===\n");
  SlpTreeOptions slp_opts;
  slp_opts.max_depth = 8;
  SlpTree u0 =
      SlpTree::Build(program, MustParseQuery(store, "u(0)"), slp_opts);
  std::printf("%s", u0.ToString(store).c_str());

  std::printf("\n=== Figure 4: global tree for <- w(2) ===\n");
  GlobalTreeOptions gopts;
  gopts.max_negation_depth = 24;
  GlobalTree g2 =
      GlobalTree::Build(program, MustParseQuery(store, "w(2)"), gopts);
  std::printf("%s", g2.ToString(store).c_str());

  std::printf("\n=== Level table: level(<- w(s^n(0))) = 2n ===\n");
  std::printf("%4s  %-12s %-10s %-8s\n", "n", "status", "level", "paper");
  for (int n = 1; n <= 8; ++n) {
    GlobalTreeOptions opts;
    opts.max_negation_depth = 40;
    GlobalTree tree = GlobalTree::Build(
        program, MustParseQuery(store, StrCat("w(", IntTerm(n), ")")), opts);
    std::printf("%4d  %-12s %-10s %-8d\n", n, GoalStatusName(tree.status()),
                tree.level().ToString().c_str(), 2 * n);
  }

  std::printf(
      "\nEvery branch of the global tree for <- w(0) is finite, yet its\n"
      "level is transfinite: T_{u(0)} has one active leaf {not w(i)} per\n"
      "integer i, failing at level lub{2i : i in N} = %s; the tree node\n"
      "u(0) fails at %s and w(0) succeeds at %s (Figure 4).\n",
      Ordinal::LimitOfStrictlyIncreasing().ToString().c_str(),
      (Ordinal::LimitOfStrictlyIncreasing() + Ordinal::Finite(1))
          .ToString()
          .c_str(),
      (Ordinal::LimitOfStrictlyIncreasing() + Ordinal::Finite(2))
          .ToString()
          .c_str());

  std::printf(
      "\nNote: the program is not locally stratified, but its well-founded\n"
      "model is total - w(i) true for every i (no infinite descending\n"
      "e-chains), u(i) false. Global SLS-resolution determines each w(i)\n"
      "at level 2i; only the limit goal w(0) needs the ordinal w+2.\n");
  return 0;
}
