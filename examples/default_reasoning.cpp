// Default reasoning with stratified negation: "birds fly unless they are
// abnormal". On stratified programs the well-founded model is total and
// coincides with the perfect model (Przymusinski) — this example computes
// both and cross-checks them, then answers queries top-down.

#include <cstdio>

#include "analysis/dependency_graph.h"
#include "core/engine.h"
#include "ground/grounder.h"
#include "lang/parser.h"
#include "wfs/perfect.h"
#include "wfs/wfs.h"

using namespace gsls;

int main() {
  TermStore store;
  Program program = MustParseProgram(store, R"(
      bird(tweety). bird(pingu). bird(pete).
      penguin(pingu).
      injured(pete).

      abnormal(X) :- penguin(X).
      abnormal(X) :- injured(X).

      flies(X) :- bird(X), not abnormal(X).

      % a second default layer: flightless birds get a pool membership
      swims(X) :- penguin(X).
      grounded_bird(X) :- bird(X), not flies(X).
  )");
  std::printf("Program:\n%s\n", program.ToString().c_str());

  // Stratification analysis (Apt-Blair-Walker).
  Stratification strat = Stratify(program);
  std::printf("stratified: %s, strata: %d\n",
              strat.stratified ? "yes" : "no", strat.stratum_count);

  // Ground, compute the well-founded model and the perfect model.
  GroundingOptions gopts;
  Result<GroundProgram> gp = GroundRelevant(program, gopts);
  if (!gp.ok()) {
    std::printf("grounding failed: %s\n", gp.status().ToString().c_str());
    return 1;
  }
  WfsModel wfs = ComputeWfs(gp.value());
  Result<Interpretation> perfect = ComputePerfectModel(gp.value(), strat);
  if (!perfect.ok()) {
    std::printf("perfect model failed: %s\n",
                perfect.status().ToString().c_str());
    return 1;
  }
  bool agree = wfs.model == perfect.value();
  std::printf("well-founded model total: %s; equals perfect model: %s\n\n",
              wfs.model.IsTotal() ? "yes" : "no", agree ? "yes" : "no");

  // Top-down query answering.
  GlobalSlsEngine engine(program);
  for (const char* q : {"flies(tweety)", "flies(pingu)", "flies(pete)",
                        "grounded_bird(pingu)", "swims(pingu)",
                        "grounded_bird(tweety)"}) {
    const Term* atom = MustParseTerm(store, q);
    std::printf("?- %-24s %s\n", q, GoalStatusName(engine.StatusOf(atom)));
  }

  Goal query = MustParseQuery(store, "flies(X)");
  QueryResult r = engine.Solve(query);
  std::printf("\n?- flies(X).  answers:");
  for (const Answer& a : r.answers) {
    std::printf(" %s",
                store.ToString(a.theta.Apply(store, query[0].atom->arg(0)))
                    .c_str());
  }
  std::printf("\n\nDefaults work as expected: tweety flies (no exception\n"
              "applies), pingu and pete do not (penguin / injured), and the\n"
              "second default layer correctly derives grounded_bird for\n"
              "exactly the non-flying birds.\n");
  return 0;
}
