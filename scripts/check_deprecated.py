#!/usr/bin/env python3
"""CI lint: no NEW call sites of the deprecated pre-Session surface.

The unified `gsls::Session` facade (src/serve/session.h) replaced the
per-engine spellings; the old ones survive as thin adapters so existing
code keeps compiling, but new code should not grow more callers:

    TabledEngine::AssertFact / RetractFact  ->  Session::Assert / Retract
    TabledEngine::AssertRule                ->  Session::Assert(clause)
    TabledEngine::SolveRelevant             ->  Session::Query
    GlobalSlsEngine::StatusOfRelevant       ->  Session::Query(...).status

The lint greps tests/ and examples/ (the user-facing call-site layers;
src/ keeps the adapter implementations and their doc comments) for the
deprecated member calls. Files that already used the old spellings when
the facade landed are grandfathered below — they cover the adapters
themselves or predate the migration. A hit in any OTHER file fails the
job with a pointer at the replacement.

Shrinking the allowlist is always welcome; growing it should be a
deliberate review decision, not a drive-by.

Usage: check_deprecated.py [--root REPO_ROOT]
"""

import argparse
import os
import re
import sys

# Member-call spellings of the deprecated surface. Matching on `.` / `->`
# keeps declarations, doc comments, and the Session implementation out of
# scope — this is a call-site lint.
DEPRECATED = [
    (re.compile(r"[.>]\s*AssertFact\s*\("), "Session::Assert(fact)"),
    (re.compile(r"[.>]\s*RetractFact\s*\("), "Session::Retract(fact)"),
    (re.compile(r"[.>]\s*SolveRelevant\s*\("), "Session::Query"),
    (re.compile(r"[.>]\s*StatusOfRelevant\s*\("),
     "Session::Query(...).status"),
]

# Call-site layers the lint patrols.
SCAN_DIRS = ["tests", "examples"]
SCAN_EXTS = {".cc", ".cpp", ".h", ".hpp"}

# Grandfathered files: used the old spellings before the Session facade
# existed, or exercise the adapters on purpose (session_test proves the
# old spellings still route through the facade).
ALLOWLIST = {
    "tests/cancel_test.cc",
    "tests/incremental_test.cc",
    "tests/query_test.cc",
    "tests/session_test.cc",
    "tests/stages_test.cc",
}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=".")
    args = ap.parse_args()

    failures = []
    grandfathered = 0
    for scan_dir in SCAN_DIRS:
        base = os.path.join(args.root, scan_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, _, filenames in os.walk(base):
            for fn in sorted(filenames):
                if os.path.splitext(fn)[1] not in SCAN_EXTS:
                    continue
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, args.root).replace(os.sep, "/")
                with open(path, encoding="utf-8", errors="replace") as f:
                    lines = f.read().splitlines()
                hits = []
                for lineno, line in enumerate(lines, 1):
                    for pattern, replacement in DEPRECATED:
                        if pattern.search(line):
                            hits.append((lineno, line.strip(), replacement))
                if not hits:
                    continue
                if rel in ALLOWLIST:
                    grandfathered += len(hits)
                    continue
                for lineno, line, replacement in hits:
                    failures.append(
                        f"{rel}:{lineno}: deprecated call "
                        f"(use {replacement}): {line}")

    print(f"deprecation-lint: {grandfathered} grandfathered hit(s), "
          f"{len(failures)} violation(s)")
    if failures:
        print("\nFAIL: new call sites of the deprecated pre-Session "
              "surface:")
        for f in failures:
            print(f"  {f}")
        print("\nMigrate to gsls::Session (docs/serving.md has the "
              "table), or — for adapter coverage — extend the allowlist "
              "in scripts/check_deprecated.py with a review.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
