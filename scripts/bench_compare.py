#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json trajectory.

Compares the current run's Google-Benchmark JSON files against the
artifacts of the previous main-branch run and fails (exit 1) when any
per-family benchmark row regressed by more than the tolerance factor.

Usage:
  bench_compare.py --baseline DIR --current DIR [--tolerance 1.5]

Rules of the gate:
  * A BENCH_*.json present in the baseline but missing from the current
    run is an error (a family silently dropped is itself a regression).
  * Benchmarks present only in the current run pass (new families).
  * Rows are matched by full benchmark name (e.g. "BM_RuleDelta_Chain/2048")
    and compared on real_time, normalized to nanoseconds.
  * CI runners are noisy; 1.5x is deliberately loose — it catches
    order-of-magnitude breakage (a lost fast path), not jitter.
"""

import argparse
import glob
import json
import os
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_rows(path):
    """benchmark name -> real_time in ns (aggregates skipped)."""
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = UNIT_NS.get(b.get("time_unit", "ns"))
        if unit is None or "real_time" not in b:
            continue
        rows[b["name"]] = b["real_time"] * unit
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=1.5)
    args = ap.parse_args()

    baseline_files = sorted(
        glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not baseline_files:
        print("bench-compare: no baseline BENCH_*.json found; "
              "first run on this branch — passing.")
        return 0

    regressions = []
    compared = 0
    for base_path in baseline_files:
        name = os.path.basename(base_path)
        cur_path = os.path.join(args.current, name)
        if not os.path.exists(cur_path):
            regressions.append(f"{name}: missing from current run")
            continue
        base = load_rows(base_path)
        cur = load_rows(cur_path)
        for row, base_ns in sorted(base.items()):
            cur_ns = cur.get(row)
            if cur_ns is None:
                # Renamed/removed rows inside a surviving family are
                # reported, not failed: the file-level check above already
                # guards against wholesale loss.
                print(f"  note: {name}:{row} absent in current run")
                continue
            compared += 1
            ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
            marker = "REGRESSION" if ratio > args.tolerance else "ok"
            print(f"  {name}:{row}: {base_ns:.0f}ns -> {cur_ns:.0f}ns "
                  f"({ratio:.2f}x) {marker}")
            if ratio > args.tolerance:
                regressions.append(
                    f"{name}:{row}: {ratio:.2f}x slower "
                    f"({base_ns:.0f}ns -> {cur_ns:.0f}ns)")

    print(f"bench-compare: {compared} rows compared, "
          f"{len(regressions)} regression(s), tolerance {args.tolerance}x")
    if regressions:
        print("\nFAIL: perf regressions beyond tolerance:")
        for r in regressions:
            print(f"  {r}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
