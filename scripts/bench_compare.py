#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json trajectory.

Compares the current run's Google-Benchmark JSON files against the
artifacts of the previous main-branch run and fails (exit 1) when any
per-family benchmark row regressed by more than the tolerance factor.

Usage:
  bench_compare.py --baseline DIR --current DIR [--tolerance 1.5]

Rules of the gate:
  * A BENCH_*.json present in the baseline but missing from the current
    run is an error (a family silently dropped is itself a regression).
  * Benchmarks present only in the current run pass (new families), but
    added and removed rows are reported explicitly — coverage drift
    should be visible in the log, not silent.
  * Rows are matched by full benchmark name (e.g. "BM_RuleDelta_Chain/2048")
    and compared on real_time, normalized to nanoseconds.
  * CI runners are noisy; 1.5x is deliberately loose — it catches
    order-of-magnitude breakage (a lost fast path), not jitter.
  * A row may declare its own jitter via a `noise_tolerance` user counter
    (e.g. `state.counters["noise_tolerance"] = 0.45` for a wall-clock
    threaded workload): the effective tolerance for that row becomes
    max(--tolerance, 1 + noise_tolerance), taking the larger declaration
    from the baseline and current runs. Rows without the counter keep the
    global tolerance.

When $GITHUB_STEP_SUMMARY is set, a markdown summary table of every
compared row (plus added/removed rows) is appended to it, so the verdict
is readable from the Actions run page without digging through the log.
Rows that got *faster* than the inverse tolerance (ratio < 1/tolerance)
are marked IMPROVEMENT per row and counted in the summary — a perf win
should be as visible in the run page as a regression, and a surprise
improvement (a row suddenly 10x faster) is worth a look too: it can mean
a benchmark stopped measuring what it used to.
"""

import argparse
import glob
import json
import os
import sys

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


class MalformedBenchJson(Exception):
    """A BENCH_*.json that cannot be parsed into benchmark rows."""


def load_rows(path):
    """benchmark name -> (real_time ns, noise_tolerance or None).

    Raises MalformedBenchJson — with a one-line human reason, never a
    traceback — for anything a truncated upload or a crashed benchmark
    binary can leave behind: unreadable file, invalid/truncated JSON, or
    JSON whose shape is not Google Benchmark's (top-level dict with a
    `benchmarks` list of dicts, numeric `real_time`).
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise MalformedBenchJson(f"unreadable: {e.strerror or e}") from e
    except json.JSONDecodeError as e:
        raise MalformedBenchJson(
            f"invalid JSON (truncated upload?): {e.msg} at line {e.lineno} "
            f"column {e.colno}") from e
    if not isinstance(data, dict):
        raise MalformedBenchJson(
            f"top level is {type(data).__name__}, expected a Google "
            "Benchmark object")
    benchmarks = data.get("benchmarks", [])
    if not isinstance(benchmarks, list):
        raise MalformedBenchJson("'benchmarks' is not a list")
    rows = {}
    for i, b in enumerate(benchmarks):
        if not isinstance(b, dict):
            raise MalformedBenchJson(f"benchmarks[{i}] is not an object")
        if b.get("run_type") == "aggregate":
            continue
        unit = UNIT_NS.get(b.get("time_unit", "ns"))
        if unit is None or "real_time" not in b:
            continue
        name = b.get("name")
        real_time = b["real_time"]
        if not isinstance(name, str):
            raise MalformedBenchJson(f"benchmarks[{i}] has no string 'name'")
        if not isinstance(real_time, (int, float)) or isinstance(
                real_time, bool):
            raise MalformedBenchJson(
                f"benchmarks[{i}] ({name!r}) has non-numeric real_time")
        noise = b.get("noise_tolerance")
        if not isinstance(noise, (int, float)) or isinstance(noise, bool):
            noise = None
        rows[name] = (real_time * unit, noise)
    return rows


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def write_step_summary(records, regressions, improvements, tolerance,
                       compared):
    """Appends a markdown table to $GITHUB_STEP_SUMMARY when set."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = []
    verdict = "❌ FAIL" if regressions else "✅ PASS"
    lines.append(f"## Bench compare: {verdict}")
    lines.append(f"{compared} rows compared, {len(regressions)} "
                 f"regression(s), {len(improvements)} improvement(s), "
                 f"tolerance {tolerance}x")
    lines.append("")
    lines.append("| benchmark | baseline | current | ratio | status |")
    lines.append("|---|---:|---:|---:|---|")
    for rec in records:
        name, base_ns, cur_ns, ratio, status = rec
        base_s = fmt_ns(base_ns) if base_ns is not None else "—"
        cur_s = fmt_ns(cur_ns) if cur_ns is not None else "—"
        ratio_s = f"{ratio:.2f}x" if ratio is not None else "—"
        lines.append(f"| `{name}` | {base_s} | {cur_s} | {ratio_s} "
                     f"| {status} |")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=1.5)
    args = ap.parse_args()

    baseline_files = sorted(
        glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not baseline_files:
        print("bench-compare: no baseline BENCH_*.json found; "
              "first run on this branch — passing.")
        return 0

    regressions = []
    improvements = []
    records = []  # (row name, base_ns, cur_ns, ratio, status)
    compared = 0
    added = 0
    removed = 0
    for base_path in baseline_files:
        name = os.path.basename(base_path)
        cur_path = os.path.join(args.current, name)
        if not os.path.exists(cur_path):
            regressions.append(f"{name}: missing from current run")
            records.append((name, None, None, None, "missing file"))
            continue
        try:
            base = load_rows(base_path)
        except MalformedBenchJson as e:
            # A corrupt *baseline* (e.g. a truncated artifact download) is
            # outside this run's control: warn and skip the family rather
            # than wedging the gate. The next green main run rewrites it.
            print(f"  WARNING: skipping baseline {name}: {e}")
            records.append((name, None, None, None, "malformed baseline"))
            continue
        try:
            cur = load_rows(cur_path)
        except MalformedBenchJson as e:
            # A corrupt *current* file was produced by this very run — the
            # bench binary crashed mid-write or emitted garbage. Fail.
            regressions.append(f"{name}: malformed current-run JSON: {e}")
            records.append((name, None, None, None, "malformed current"))
            continue
        for row, (base_ns, base_noise) in sorted(base.items()):
            if row not in cur:
                # Renamed/removed rows inside a surviving family are
                # reported, not failed: the file-level check above already
                # guards against wholesale loss.
                removed += 1
                print(f"  removed: {name}:{row} absent in current run")
                records.append((f"{name}:{row}", base_ns, None, None,
                                "removed"))
                continue
            cur_ns, cur_noise = cur[row]
            compared += 1
            # Per-row noise declarations widen the gate, never narrow it.
            declared = max(
                (n for n in (base_noise, cur_noise) if n is not None),
                default=None)
            tolerance = args.tolerance
            if declared is not None:
                tolerance = max(tolerance, 1.0 + declared)
            ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
            if ratio > tolerance:
                marker = "REGRESSION"
            elif ratio < 1.0 / tolerance:
                marker = "IMPROVEMENT"
            else:
                marker = "ok"
            noise_note = (f" [noise_tolerance -> {tolerance:.2f}x]"
                          if tolerance != args.tolerance else "")
            print(f"  {name}:{row}: {base_ns:.0f}ns -> {cur_ns:.0f}ns "
                  f"({ratio:.2f}x) {marker}{noise_note}")
            records.append((f"{name}:{row}", base_ns, cur_ns, ratio, marker))
            if ratio > tolerance:
                regressions.append(
                    f"{name}:{row}: {ratio:.2f}x slower "
                    f"({base_ns:.0f}ns -> {cur_ns:.0f}ns, row tolerance "
                    f"{tolerance:.2f}x)")
            elif ratio < 1.0 / tolerance:
                improvements.append(
                    f"{name}:{row}: {1.0 / ratio:.2f}x faster "
                    f"({base_ns:.0f}ns -> {cur_ns:.0f}ns)")
        for row, (cur_ns, _) in sorted(cur.items()):
            if row not in base:
                added += 1
                print(f"  added: {name}:{row} new in current run")
                records.append((f"{name}:{row}", None, cur_ns, None, "added"))

    print(f"bench-compare: {compared} rows compared, {added} added, "
          f"{removed} removed, {len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s), tolerance {args.tolerance}x")
    if improvements:
        print("improvements beyond inverse tolerance:")
        for imp in improvements:
            print(f"  {imp}")
    write_step_summary(records, regressions, improvements, args.tolerance,
                       compared)
    if regressions:
        print("\nFAIL: perf regressions beyond tolerance:")
        for r in regressions:
            print(f"  {r}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
