#!/usr/bin/env python3
"""Docs link checker: every relative link in the markdown docs must
resolve to a file in the repository.

Usage:
  check_links.py [--root DIR]

Scans README.md plus every *.md under docs/ for markdown links and
inline code-span file references of the form `path/file.ext:line`.
External links (http/https/mailto) are ignored; anchors are stripped
before the existence check. Exit 1 with a per-link report when any
target is missing — CI runs this so a doc rename or a dead
cross-reference fails the build instead of rotting silently.
"""

import argparse
import glob
import os
import re
import sys

# [text](target) — excluding images' alt text edge cases is unnecessary;
# ![alt](img) matches the same shape and images must exist too.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

EXTERNAL = ("http://", "https://", "mailto:")


def check_file(md_path: str, root: str) -> list[str]:
    broken = []
    base = os.path.dirname(md_path)
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure in-page anchor
            continue
        resolved = os.path.normpath(os.path.join(base, path))
        if not os.path.exists(resolved):
            rel = os.path.relpath(md_path, root)
            broken.append(f"{rel}: broken link '{target}'")
    return broken


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", default=".")
    args = parser.parse_args()

    files = [os.path.join(args.root, "README.md")]
    files += sorted(glob.glob(os.path.join(args.root, "docs", "*.md")))
    files = [f for f in files if os.path.exists(f)]

    broken = []
    for md in files:
        broken += check_file(md, args.root)

    print(f"checked {len(files)} markdown files")
    if broken:
        for line in broken:
            print(f"  BROKEN {line}")
        return 1
    print("  all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
