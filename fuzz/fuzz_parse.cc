// libFuzzer target over the textual front half of the pipeline:
//
//   bytes -> ParseProgram -> GroundRelevant -> SolveWfs
//
// Every stage runs with hard budgets so a pathological input costs bounded
// work instead of an OOM or a multi-second timeout the fuzzer would
// misreport as a hang:
//
//   * the grounder gets a small universe (few hundred terms, depth 2) and
//     tight rule/atom caps — exceeding any of them is a clean
//     ResourceExhausted status, which is a *pass* for the fuzzer;
//   * the solver gets a step budget, so an adversarially dense grounding
//     still returns (outcome kDeadlineExceeded) after a bounded number of
//     checkpoints.
//
// Only the Status-returning entry points are exercised: the `Must*` /
// `DieOnParse` helpers in lang/parser.h are test-and-example conveniences
// that abort() on bad input by design, which a fuzzer would report as a
// crash on every malformed program. Anything that aborts, throws, or trips
// a sanitizer here is a real bug.
//
// Build (gated in CMakeLists.txt on Clang + GSLS_SANITIZE, which provides
// the instrumentation libFuzzer needs):
//
//   cmake -B build-fuzz -DGSLS_SANITIZE=ON -DGSLS_BUILD_FUZZERS=ON \
//         -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz --target fuzz_parse
//   ./build-fuzz/fuzz_parse -max_len=4096 -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "ground/grounder.h"
#include "lang/parser.h"
#include "solver/solver.h"
#include "term/term_store.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view src(reinterpret_cast<const char*>(data), size);

  gsls::TermStore store;
  gsls::Result<gsls::Program> parsed = gsls::ParseProgram(store, src);
  if (!parsed.ok()) return 0;  // rejected inputs are the common, boring case

  gsls::GroundingOptions gopts;
  gopts.universe.max_term_depth = 2;  // exercise the function-symbol paths
  gopts.universe.max_terms = 512;
  gopts.max_rules = 20'000;
  gopts.max_atoms = 10'000;
  gsls::Result<gsls::GroundProgram> grounded =
      gsls::GroundRelevant(parsed.value(), gopts);
  if (!grounded.ok()) return 0;  // budget exhaustion is a clean rejection

  gsls::SolverOptions sopts;
  sopts.step_budget = 200'000;  // bounded checkpoints, never a hang
  sopts.compute_levels = true;  // stage reconstruction sees the input too
  gsls::SolveWfs(grounded.value(), sopts);
  return 0;
}
